package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestDifferentialAggregation cross-checks the SQL engine against a
// straightforward Go evaluator on randomized data and randomized
// grouped-aggregate queries. Any divergence in grouping, filtering, or
// aggregate math fails with the offending seed for replay.
func TestDifferentialAggregation(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		runDifferentialCase(t, seed)
	}
}

type diffRow struct {
	g1, g2 string
	a, b   float64
}

func runDifferentialCase(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	n := 50 + rng.Intn(500)
	data := make([]diffRow, n)
	rel := NewRelation("t", MustSchema(
		Column{Name: "g1", Kind: KindString},
		Column{Name: "g2", Kind: KindString},
		Column{Name: "a", Kind: KindFloat},
		Column{Name: "b", Kind: KindFloat},
	))
	for i := range data {
		data[i] = diffRow{
			g1: fmt.Sprintf("x%d", rng.Intn(4)),
			g2: fmt.Sprintf("y%d", rng.Intn(3)),
			a:  math.Round(rng.Float64()*200-100) / 2,
			b:  math.Round(rng.Float64()*50) / 2,
		}
		rel.Insert(Row{
			NewString(data[i].g1), NewString(data[i].g2),
			NewFloat(data[i].a), NewFloat(data[i].b),
		})
	}
	cat := NewCatalog()
	cat.Register(rel)

	// Random predicate: a <op> c, optionally AND b <op> c2.
	ops := []string{"<", "<=", ">", ">=", "=", "<>"}
	cmp := func(op string, l, r float64) bool {
		switch op {
		case "<":
			return l < r
		case "<=":
			return l <= r
		case ">":
			return l > r
		case ">=":
			return l >= r
		case "=":
			return l == r
		default:
			return l != r
		}
	}
	op1 := ops[rng.Intn(len(ops))]
	c1 := math.Round(rng.Float64()*100-50) / 2
	where := fmt.Sprintf("a %s %v", op1, c1)
	pred := func(r diffRow) bool { return cmp(op1, r.a, c1) }
	if rng.Intn(2) == 0 {
		op2 := ops[rng.Intn(len(ops))]
		c2 := math.Round(rng.Float64()*25) / 2
		where += fmt.Sprintf(" and b %s %v", op2, c2)
		inner := pred
		pred = func(r diffRow) bool { return inner(r) && cmp(op2, r.b, c2) }
	}

	query := fmt.Sprintf(
		"select g1, g2, sum(a), count(*), avg(b), min(a), max(b) from t where %s group by g1, g2 order by g1, g2",
		where)
	res, err := ExecuteSQL(cat, query)
	if err != nil {
		t.Fatalf("seed %d: %q: %v", seed, query, err)
	}

	// Reference evaluation.
	type agg struct {
		sumA, sumB, minA, maxB float64
		n                      int
	}
	ref := map[string]*agg{}
	for _, r := range data {
		if !pred(r) {
			continue
		}
		k := r.g1 + "|" + r.g2
		a := ref[k]
		if a == nil {
			a = &agg{minA: math.Inf(1), maxB: math.Inf(-1)}
			ref[k] = a
		}
		a.n++
		a.sumA += r.a
		a.sumB += r.b
		a.minA = math.Min(a.minA, r.a)
		a.maxB = math.Max(a.maxB, r.b)
	}
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	if len(res.Rows) != len(keys) {
		t.Fatalf("seed %d: %d groups, want %d (query %q)", seed, len(res.Rows), len(keys), query)
	}
	for i, k := range keys {
		row := res.Rows[i]
		gotKey := row[0].S + "|" + row[1].S
		if gotKey != k {
			t.Fatalf("seed %d: group %d = %q, want %q", seed, i, gotKey, k)
		}
		want := ref[k]
		checks := []struct {
			name string
			got  Value
			want float64
		}{
			{"sum(a)", row[2], want.sumA},
			{"count", row[3], float64(want.n)},
			{"avg(b)", row[4], want.sumB / float64(want.n)},
			{"min(a)", row[5], want.minA},
			{"max(b)", row[6], want.maxB},
		}
		for _, c := range checks {
			got, ok := c.got.AsFloat()
			if !ok {
				t.Fatalf("seed %d group %q: %s not numeric: %v", seed, k, c.name, c.got)
			}
			if math.Abs(got-c.want) > 1e-9*math.Max(1, math.Abs(c.want)) {
				t.Errorf("seed %d group %q: %s = %v, want %v", seed, k, c.name, got, c.want)
			}
		}
	}
}

// TestDifferentialJoin cross-checks hash-join results against a nested
// loop reference on random data.
func TestDifferentialJoin(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed * 77))
		cat := NewCatalog()
		left := NewRelation("l", MustSchema(
			Column{Name: "k", Kind: KindInt}, Column{Name: "v", Kind: KindInt}))
		right := NewRelation("r", MustSchema(
			Column{Name: "k", Kind: KindInt}, Column{Name: "w", Kind: KindInt}))
		type pair struct{ k, v int64 }
		var ls, rs []pair
		for i := 0; i < 30+rng.Intn(100); i++ {
			p := pair{k: int64(rng.Intn(10)), v: int64(rng.Intn(100))}
			ls = append(ls, p)
			left.Insert(Row{NewInt(p.k), NewInt(p.v)})
		}
		for i := 0; i < 30+rng.Intn(100); i++ {
			p := pair{k: int64(rng.Intn(10)), v: int64(rng.Intn(100))}
			rs = append(rs, p)
			right.Insert(Row{NewInt(p.k), NewInt(p.v)})
		}
		cat.Register(left)
		cat.Register(right)

		res, err := ExecuteSQL(cat, "select sum(l.v + r.w), count(*) from l, r where l.k = r.k")
		if err != nil {
			t.Fatal(err)
		}
		var wantSum, wantCount int64
		for _, lp := range ls {
			for _, rp := range rs {
				if lp.k == rp.k {
					wantSum += lp.v + rp.v
					wantCount++
				}
			}
		}
		gotSum, _ := res.Rows[0][0].AsInt()
		gotCount, _ := res.Rows[0][1].AsInt()
		if wantCount == 0 {
			if !res.Rows[0][0].IsNull() || gotCount != 0 {
				t.Errorf("seed %d: empty join gave %v/%v", seed, res.Rows[0][0], gotCount)
			}
			continue
		}
		if gotSum != wantSum || gotCount != wantCount {
			t.Errorf("seed %d: join sum/count %d/%d, want %d/%d", seed, gotSum, gotCount, wantSum, wantCount)
		}
	}
}
