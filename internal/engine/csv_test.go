package engine

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	rel := NewRelation("t", MustSchema(
		Column{Name: "i", Kind: KindInt},
		Column{Name: "f", Kind: KindFloat},
		Column{Name: "s", Kind: KindString},
		Column{Name: "d", Kind: KindDate},
		Column{Name: "b", Kind: KindBool},
	))
	rel.InsertAll([]Row{
		{NewInt(-7), NewFloat(2.5), NewString("hello, \"world\""), MustParseDate("1998-09-01"), NewBool(true)},
		{Null, Null, Null, Null, Null},
		{NewInt(42), NewFloat(-0.125), NewString(""), MustParseDate("1992-01-01"), NewBool(false)},
	})

	var buf bytes.Buffer
	if err := rel.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("t2", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 {
		t.Fatalf("rows %d", back.NumRows())
	}
	orig, got := rel.Rows(), back.Rows()
	for i := range orig {
		for j := range orig[i] {
			// NULL round-trips to NULL; empty string becomes NULL (CSV
			// cannot distinguish) — accept that one documented lossy
			// cell.
			if orig[i][j].K == KindString && orig[i][j].S == "" {
				if !got[i][j].IsNull() {
					t.Errorf("empty string should read back NULL, got %v", got[i][j])
				}
				continue
			}
			if !orig[i][j].Equal(got[i][j]) || orig[i][j].K != got[i][j].K {
				t.Errorf("cell (%d,%d): %v (%s) != %v (%s)",
					i, j, orig[i][j], orig[i][j].K, got[i][j], got[i][j].K)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                       // no header
		"a,b\n",                  // missing kind row
		"a\nWEIRD\n1\n",          // unknown kind
		"a\nINTEGER\nnotanint\n", // bad int
		"a\nFLOAT\nxx\n",         // bad float
		"a\nDATE\n31-12-1999\n",  // bad date
		"a\nBOOLEAN\nmaybe\n",    // bad bool
		"a,a\nINTEGER,INTEGER\n", // duplicate column
		"a\nINTEGER\n1,2\n",      // arity mismatch
	}
	for _, c := range cases {
		if _, err := ReadCSV("x", strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", c)
		}
	}
}

func TestReadCSVKindAliases(t *testing.T) {
	in := "a,b,c,d,e\nint,double,text,date,bool\n1,2.5,hi,1998-01-01,t\n"
	rel, err := ReadCSV("x", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	row := rel.Rows()[0]
	if row[0].I != 1 || row[1].F != 2.5 || row[2].S != "hi" || row[4].I != 1 {
		t.Errorf("row %v", row)
	}
	if row[3].K != KindDate {
		t.Errorf("date kind %v", row[3].K)
	}
}

func TestCSVQueryAfterLoad(t *testing.T) {
	in := "g,v\nVARCHAR,FLOAT\nx,1\nx,2\ny,10\n"
	rel, err := ReadCSV("loaded", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	cat.Register(rel)
	res := mustQuery(t, cat, "select g, sum(v) from loaded group by g order by g")
	if len(res.Rows) != 2 || res.Rows[0][1].F != 3 || res.Rows[1][1].F != 10 {
		t.Errorf("rows %v", res.Rows)
	}
}
