package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns with case-insensitive name lookup.
type Schema struct {
	Cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from columns. Column names must be unique
// (case-insensitively).
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Cols: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("engine: duplicate column %q", c.Name)
		}
		s.byName[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema but panics on error.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the ordinal of the named column, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Project returns a new schema containing the named columns, in order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return nil, fmt.Errorf("engine: unknown column %q", n)
		}
		cols = append(cols, s.Cols[i])
	}
	return NewSchema(cols...)
}

// Row is one tuple.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Relation is an in-memory table: a schema plus rows. Relations are safe
// for concurrent reads; writers must hold the catalog-level or caller
// lock. Mutating methods are guarded by an internal mutex so streaming
// maintenance (Section 6) can append while readers snapshot.
type Relation struct {
	Name   string
	Schema *Schema

	mu      sync.RWMutex
	rows    []Row
	version uint64 // bumped on every mutation; guards the batch cache
	batch   *Batch // lazily built columnar snapshot; nil until built or after a mutation
}

// NewRelation creates an empty relation.
func NewRelation(name string, schema *Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Insert appends a row after checking arity. The row is stored as given
// (not copied); callers must not mutate it afterwards.
func (r *Relation) Insert(row Row) error {
	if len(row) != r.Schema.Len() {
		return fmt.Errorf("engine: %s: row arity %d, schema arity %d", r.Name, len(row), r.Schema.Len())
	}
	r.mu.Lock()
	r.rows = append(r.rows, row)
	r.invalidateBatchLocked()
	r.mu.Unlock()
	return nil
}

// InsertAll appends rows, failing on the first arity mismatch (rows
// before the mismatch stay inserted). The lock is taken once for the
// whole slice and capacity is grown up front.
func (r *Relation) InsertAll(rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	arity := r.Schema.Len()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.invalidateBatchLocked()
	if need := len(r.rows) + len(rows); cap(r.rows) < need {
		grown := make([]Row, len(r.rows), need)
		copy(grown, r.rows)
		r.rows = grown
	}
	for _, row := range rows {
		if len(row) != arity {
			return fmt.Errorf("engine: %s: row arity %d, schema arity %d", r.Name, len(row), arity)
		}
		r.rows = append(r.rows, row)
	}
	return nil
}

// NumRows returns the current row count.
func (r *Relation) NumRows() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.rows)
}

// Rows returns a snapshot slice of the rows. The slice header is copied;
// rows themselves are shared and must be treated as immutable.
func (r *Relation) Rows() []Row {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Row, len(r.rows))
	copy(out, r.rows)
	return out
}

// Truncate removes all rows.
func (r *Relation) Truncate() {
	r.mu.Lock()
	r.rows = r.rows[:0]
	r.invalidateBatchLocked()
	r.mu.Unlock()
}

// invalidateBatchLocked drops the cached columnar batch. Callers must
// hold r.mu for writing.
func (r *Relation) invalidateBatchLocked() {
	r.version++
	r.batch = nil
}

// Batch returns a columnar snapshot of the relation, building it lazily
// on first use and caching it until the next mutation. The returned
// batch is immutable and safe for concurrent use; it reflects the rows
// present at some point between the call and its return.
func (r *Relation) Batch() *Batch {
	r.mu.RLock()
	b := r.batch
	ver := r.version
	var rows []Row
	if b == nil {
		// Snapshot the slice header under the read lock: Update replaces
		// r.rows[i] in place, so building from the live slice outside the
		// lock would race.
		rows = make([]Row, len(r.rows))
		copy(rows, r.rows)
	}
	r.mu.RUnlock()
	if b != nil {
		return b
	}
	b = buildBatch(rows)
	r.mu.Lock()
	if r.version == ver {
		r.batch = b
	} else if r.batch != nil {
		// Another builder cached a batch for the same (newer) version.
		b = r.batch
	}
	r.mu.Unlock()
	return b
}

// Update replaces every row matching pred with transform(row) and
// returns the number of rows updated. Rows are replaced, never mutated
// in place, so concurrent readers holding Rows() snapshots keep a
// consistent view. transform must return a row of the same arity.
func (r *Relation) Update(pred func(Row) bool, transform func(Row) Row) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.invalidateBatchLocked()
	updated := 0
	for i, row := range r.rows {
		if !pred(row) {
			continue
		}
		next := transform(row)
		if len(next) != r.Schema.Len() {
			return updated, fmt.Errorf("engine: %s: update arity %d, schema arity %d", r.Name, len(next), r.Schema.Len())
		}
		r.rows[i] = next
		updated++
	}
	return updated, nil
}

// Catalog names and stores relations, playing the role of the warehouse
// DBMS's data dictionary. Synopsis relations produced by the sampler are
// registered here alongside base relations (Section 2: "stored as
// regular relations in the DBMS").
type Catalog struct {
	mu   sync.RWMutex
	rels map[string]*Relation
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{rels: make(map[string]*Relation)}
}

// Register adds or replaces a relation under its name.
func (c *Catalog) Register(rel *Relation) {
	c.mu.Lock()
	c.rels[strings.ToLower(rel.Name)] = rel
	c.mu.Unlock()
}

// Lookup finds a relation by name (case-insensitive).
func (c *Catalog) Lookup(name string) (*Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rel, ok := c.rels[strings.ToLower(name)]
	return rel, ok
}

// Drop removes a relation; it is not an error if absent.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	delete(c.rels, strings.ToLower(name))
	c.mu.Unlock()
}

// Names returns the sorted names of all registered relations.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.rels))
	for _, rel := range c.rels {
		out = append(out, rel.Name)
	}
	sort.Strings(out)
	return out
}
