package engine

// Columnar batch representation. A Batch is an immutable column-major
// snapshot of a relation: each column is decoded into a typed vector
// (int64 lane, float64 lane, or a dictionary plus codes for strings)
// with NULLs tracked in a per-column bitmap. Batches feed the
// vectorized executor (vec_exec.go) and the estimate package's columnar
// scan; the row engine never sees them.
//
// Layout invariants:
//   - A column has one uniform non-null Kind, recorded in colData.kind.
//     Columns where two different non-null kinds appear are flagged
//     mixed and the vectorized path declines queries touching them.
//   - Numeric columns always carry the floats lane (the AsFloat view),
//     so kernels that work in float space never re-dispatch on kind.
//     Int/Date/Bool columns additionally carry the raw int64 lane.
//   - String columns are dictionary-encoded: dict holds the distinct
//     values in first-appearance order, codes[i] indexes dict. Rows that
//     are NULL have code 0; consult the null bitmap first.
//   - The bitmap is nil when the column has no NULLs, letting kernels
//     skip null checks entirely on dense columns.

const (
	// vecChunk is the number of rows a vectorized kernel processes per
	// invocation. Context polling, selection-vector building, and
	// scratch buffers are all amortized over this many rows.
	vecChunk = 4096
)

// nullBitmap marks NULL positions: bit i set means row i is NULL.
type nullBitmap []uint64

func newNullBitmap(n int) nullBitmap { return make(nullBitmap, (n+63)/64) }

func (nb nullBitmap) set(i int) { nb[i>>6] |= 1 << (uint(i) & 63) }

func (nb nullBitmap) get(i int) bool {
	return nb != nil && nb[i>>6]&(1<<(uint(i)&63)) != 0
}

// colData is one column of a Batch.
type colData struct {
	kind  Kind // uniform non-null kind; KindNull if the column is all-NULL or empty
	mixed bool // heterogeneous non-null kinds observed; not vectorizable

	nulls nullBitmap // nil when the column has no NULLs

	ints   []int64   // KindInt, KindDate, KindBool: the raw I field
	floats []float64 // all numeric kinds: the AsFloat view
	dict   []string  // KindString: distinct values, first-appearance order
	codes  []int32   // KindString: per-row dictionary codes

	// dictNUL is set when some dictionary entry contains a NUL byte.
	// The row engine's composite group keys concatenate raw strings, so
	// NUL-bearing values could make the fixed-width vectorized key
	// partition rows differently; grouping on such a column declines.
	dictNUL bool
}

// valueAt rematerializes the boxed Value at row i.
func (c *colData) valueAt(i int) Value {
	if c.nulls.get(i) {
		return Null
	}
	switch c.kind {
	case KindInt:
		return Value{K: KindInt, I: c.ints[i]}
	case KindDate:
		return Value{K: KindDate, I: c.ints[i]}
	case KindBool:
		return Value{K: KindBool, I: c.ints[i]}
	case KindFloat:
		return Value{K: KindFloat, F: c.floats[i]}
	case KindString:
		return Value{K: KindString, S: c.dict[c.codes[i]]}
	default:
		return Null
	}
}

// fillNulls expands the bitmap for rows [lo,hi) into dst (len hi-lo).
// Returns nil when the column has no NULLs at all.
func (c *colData) fillNulls(lo, hi int, dst []bool) []bool {
	if c.nulls == nil {
		return nil
	}
	dst = dst[:hi-lo]
	for i := range dst {
		dst[i] = c.nulls.get(lo + i)
	}
	return dst
}

// Batch is an immutable columnar snapshot of a relation's rows. The
// original row slice is retained so per-group representative rows and
// declined columns can be served without rematerialization.
type Batch struct {
	n      int
	rows   []Row
	cols   []colData
	ragged bool // some row's arity differs from the first row's; not vectorizable
}

// NumRows returns the number of rows in the batch.
func (b *Batch) NumRows() int { return b.n }

// NumCols returns the number of columns in the batch.
func (b *Batch) NumCols() int { return len(b.cols) }

// Rows returns the row snapshot the batch was built from. Shared, not
// copied; callers must treat it as immutable.
func (b *Batch) Rows() []Row { return b.rows }

// buildBatch decodes a row snapshot into columnar form. Two passes: the
// first fixes each column's kind (or flags it mixed), the second fills
// the typed lanes.
func buildBatch(rows []Row) *Batch {
	b := &Batch{n: len(rows), rows: rows}
	if len(rows) == 0 {
		return b
	}
	width := len(rows[0])
	b.cols = make([]colData, width)
	for _, r := range rows {
		if len(r) != width {
			b.ragged = true
			return b
		}
		for ci := range r {
			k := r[ci].K
			if k == KindNull {
				continue
			}
			c := &b.cols[ci]
			switch {
			case c.kind == KindNull:
				c.kind = k
			case c.kind != k:
				c.mixed = true
			}
		}
	}
	for ci := range b.cols {
		b.fillColumn(ci)
	}
	return b
}

func (b *Batch) fillColumn(ci int) {
	c := &b.cols[ci]
	if c.mixed || c.kind == KindNull {
		// Mixed columns are served from b.rows; all-NULL columns need
		// only the bitmap.
		if c.kind == KindNull && !c.mixed && b.n > 0 {
			c.nulls = newNullBitmap(b.n)
			for i := 0; i < b.n; i++ {
				c.nulls.set(i)
			}
		}
		return
	}
	switch c.kind {
	case KindInt, KindDate, KindBool:
		c.ints = make([]int64, b.n)
		c.floats = make([]float64, b.n)
		for i, r := range b.rows {
			v := r[ci]
			if v.K == KindNull {
				if c.nulls == nil {
					c.nulls = newNullBitmap(b.n)
				}
				c.nulls.set(i)
				continue
			}
			c.ints[i] = v.I
			c.floats[i] = float64(v.I)
		}
	case KindFloat:
		c.floats = make([]float64, b.n)
		for i, r := range b.rows {
			v := r[ci]
			if v.K == KindNull {
				if c.nulls == nil {
					c.nulls = newNullBitmap(b.n)
				}
				c.nulls.set(i)
				continue
			}
			c.floats[i] = v.F
		}
	case KindString:
		c.codes = make([]int32, b.n)
		lookup := make(map[string]int32)
		for i, r := range b.rows {
			v := r[ci]
			if v.K == KindNull {
				if c.nulls == nil {
					c.nulls = newNullBitmap(b.n)
				}
				c.nulls.set(i)
				continue
			}
			code, ok := lookup[v.S]
			if !ok {
				code = int32(len(c.dict))
				lookup[v.S] = code
				c.dict = append(c.dict, v.S)
				if !c.dictNUL {
					for j := 0; j < len(v.S); j++ {
						if v.S[j] == 0 {
							c.dictNUL = true
							break
						}
					}
				}
			}
			c.codes[i] = code
		}
	}
}

// AppendColumnFloats gathers column col of rows into parallel value and
// validity slices, appending to vals and ok (pass vals[:0], ok[:0] to
// reuse scratch). ok[i] is false exactly when rows[i][col].AsFloat
// reports not-ok (NULL or non-numeric), matching the per-row semantics
// of estimate.Query.Value closures. This is the gather kernel the
// estimate package's columnar scan uses.
func AppendColumnFloats(rows []Row, col int, vals []float64, ok []bool) ([]float64, []bool) {
	for _, r := range rows {
		f, k := r[col].AsFloat()
		vals = append(vals, f)
		ok = append(ok, k)
	}
	return vals, ok
}
