package engine

// Vectorized expression compilation. Predicates and numeric expressions
// over a Batch compile into small kernel trees that evaluate one
// vecChunk of rows per call into reused scratch buffers.
//
// The contract with the row engine is strict: a compiled kernel must
// produce, for every row, exactly the value evalCtx.eval would produce
// (same bits for floats, same NULL handling, same NaN behaviour via the
// Compare ordering, same int64 wraparound, same /0 -> NULL rule).
// Anything the compiler cannot guarantee bit-identical it declines
// (returns ok=false), which routes the whole statement to the row
// engine — declining is always safe, never wrong.

import (
	"strings"

	"github.com/approxdb/congress/internal/sqlparse"
)

// numChunk is one chunk of a compiled numeric expression: the float
// lane is always valid (the AsFloat view); the int lane is valid only
// when the producing node's kind() is KindInt/KindDate/KindBool; null
// is nil when no row in the chunk is NULL.
type numChunk struct {
	ints   []int64
	floats []float64
	null   []bool
}

// numNode is a compiled numeric expression. kind() is the Value kind of
// every non-NULL result (KindNull for an always-NULL expression).
type numNode interface {
	kind() Kind
	eval(lo, hi int) numChunk
}

// boolNode is a compiled predicate. eval fills out[i] with exactly the
// .Bool() of the Value the row engine would produce for row lo+i.
type boolNode interface {
	eval(lo, hi int, out []bool)
}

// vecCompiler compiles expressions against one batch + environment.
type vecCompiler struct {
	b       *Batch
	env     *rowEnv
	nullOne *nullNum // shared always-NULL node (read-only buffers)
}

// col resolves a column reference to its batch column, declining
// mixed-kind columns (their typed lanes were never built).
func (vc *vecCompiler) col(cr *sqlparse.ColumnRef) (*colData, bool) {
	idx, err := vc.env.resolve(cr.Table, cr.Name)
	if err != nil || idx < 0 || idx >= len(vc.b.cols) {
		return nil, false
	}
	c := &vc.b.cols[idx]
	if c.mixed {
		return nil, false
	}
	return c, true
}

// --- numeric nodes ---

type colNum struct {
	c       *colData
	nullBuf []bool
}

func (n *colNum) kind() Kind { return n.c.kind }

func (n *colNum) eval(lo, hi int) numChunk {
	ch := numChunk{floats: n.c.floats[lo:hi]}
	if n.c.ints != nil {
		ch.ints = n.c.ints[lo:hi]
	}
	ch.null = n.c.fillNulls(lo, hi, n.nullBuf)
	return ch
}

type constNum struct {
	k      Kind
	ints   []int64
	floats []float64
}

func (n *constNum) kind() Kind { return n.k }

func (n *constNum) eval(lo, hi int) numChunk {
	sz := hi - lo
	ch := numChunk{floats: n.floats[:sz]}
	if n.ints != nil {
		ch.ints = n.ints[:sz]
	}
	return ch
}

// nullNum is an expression that is NULL for every row (a NULL literal,
// an all-NULL column, or arithmetic folded to always-NULL).
type nullNum struct {
	nulls  []bool
	ints   []int64
	floats []float64
}

func (n *nullNum) kind() Kind { return KindNull }

func (n *nullNum) eval(lo, hi int) numChunk {
	sz := hi - lo
	return numChunk{ints: n.ints[:sz], floats: n.floats[:sz], null: n.nulls[:sz]}
}

func (vc *vecCompiler) nullNode() *nullNum {
	if vc.nullOne == nil {
		nulls := make([]bool, vecChunk)
		for i := range nulls {
			nulls[i] = true
		}
		vc.nullOne = &nullNum{nulls: nulls, ints: make([]int64, vecChunk), floats: make([]float64, vecChunk)}
	}
	return vc.nullOne
}

func (vc *vecCompiler) constNode(v Value) *constNum {
	c := &constNum{k: v.K, floats: make([]float64, vecChunk)}
	f, _ := v.AsFloat()
	for i := range c.floats {
		c.floats[i] = f
	}
	if v.K != KindFloat {
		c.ints = make([]int64, vecChunk)
		for i := range c.ints {
			c.ints[i] = v.I
		}
	}
	return c
}

// arithNum implements + - * / % with the row engine's arith semantics:
// both-int operands stay integral (with int64 wraparound) except "/",
// which always divides in float space and yields NULL on a zero
// divisor; "%" is integral-only. The float lane of an integer result is
// float64(intResult), never lf op rf, so downstream AsFloat views match
// the row engine beyond 2^53.
type arithNum struct {
	op      byte // '+', '-', '*', '/', '%'
	l, r    numNode
	k       Kind
	ints    []int64
	floats  []float64
	nullBuf []bool
}

func (n *arithNum) kind() Kind { return n.k }

func (n *arithNum) eval(lo, hi int) numChunk {
	lc := n.l.eval(lo, hi)
	rc := n.r.eval(lo, hi)
	sz := hi - lo
	out := numChunk{floats: n.floats[:sz]}
	if lc.null != nil || rc.null != nil || n.op == '/' || n.op == '%' {
		null := n.nullBuf[:sz]
		for i := range null {
			null[i] = (lc.null != nil && lc.null[i]) || (rc.null != nil && rc.null[i])
		}
		out.null = null
	}
	if n.k == KindInt {
		ints := n.ints[:sz]
		out.ints = ints
		li, ri := lc.ints, rc.ints
		switch n.op {
		case '+':
			for i := range ints {
				ints[i] = li[i] + ri[i]
			}
		case '-':
			for i := range ints {
				ints[i] = li[i] - ri[i]
			}
		case '*':
			for i := range ints {
				ints[i] = li[i] * ri[i]
			}
		case '%':
			for i := range ints {
				if ri[i] == 0 {
					out.null[i] = true
					continue
				}
				ints[i] = li[i] % ri[i]
			}
		}
		f := out.floats
		for i := range f {
			f[i] = float64(ints[i])
		}
		return out
	}
	lf, rf := lc.floats, rc.floats
	f := out.floats
	switch n.op {
	case '+':
		for i := range f {
			f[i] = lf[i] + rf[i]
		}
	case '-':
		for i := range f {
			f[i] = lf[i] - rf[i]
		}
	case '*':
		for i := range f {
			f[i] = lf[i] * rf[i]
		}
	case '/':
		for i := range f {
			if rf[i] == 0 {
				out.null[i] = true
				continue
			}
			f[i] = lf[i] / rf[i]
		}
	}
	return out
}

type negNum struct {
	x      numNode
	k      Kind
	ints   []int64
	floats []float64
}

func (n *negNum) kind() Kind { return n.k }

func (n *negNum) eval(lo, hi int) numChunk {
	ch := n.x.eval(lo, hi)
	sz := hi - lo
	out := numChunk{floats: n.floats[:sz], null: ch.null}
	if n.k == KindInt {
		ints := n.ints[:sz]
		out.ints = ints
		for i := range ints {
			ints[i] = -ch.ints[i]
			out.floats[i] = float64(ints[i])
		}
		return out
	}
	for i := range out.floats {
		out.floats[i] = -ch.floats[i]
	}
	return out
}

// compileNum compiles a numeric expression. Declines string-typed
// operands, scalar functions, CASE, and anything whose result kind the
// compiler cannot pin down statically.
func (vc *vecCompiler) compileNum(e sqlparse.Expr) (numNode, bool) {
	switch n := e.(type) {
	case *sqlparse.ColumnRef:
		c, ok := vc.col(n)
		if !ok {
			return nil, false
		}
		switch c.kind {
		case KindInt, KindFloat, KindDate, KindBool:
			return &colNum{c: c, nullBuf: make([]bool, vecChunk)}, true
		case KindNull:
			return vc.nullNode(), true
		}
		return nil, false
	case *sqlparse.Literal:
		switch n.Kind {
		case sqlparse.LitInt:
			return vc.constNode(NewInt(n.I)), true
		case sqlparse.LitFloat:
			return vc.constNode(NewFloat(n.F)), true
		case sqlparse.LitBool:
			return vc.constNode(NewBool(n.B)), true
		case sqlparse.LitNull:
			return vc.nullNode(), true
		case sqlparse.LitDate:
			d, err := ParseDate(n.S)
			if err != nil {
				return nil, false // row engine reports the parse error
			}
			return vc.constNode(d), true
		}
		return nil, false
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "+", "-", "*", "/", "%":
		default:
			return nil, false
		}
		l, ok := vc.compileNum(n.Left)
		if !ok {
			return nil, false
		}
		r, ok := vc.compileNum(n.Right)
		if !ok {
			return nil, false
		}
		if n.Op == "%" {
			// Row semantics: % over anything but two ints is NULL.
			if l.kind() != KindInt || r.kind() != KindInt {
				return vc.nullNode(), true
			}
		}
		k := KindFloat
		if n.Op != "/" && l.kind() == KindInt && r.kind() == KindInt {
			k = KindInt
		}
		return &arithNum{
			op: n.Op[0], l: l, r: r, k: k,
			ints:    make([]int64, vecChunk),
			floats:  make([]float64, vecChunk),
			nullBuf: make([]bool, vecChunk),
		}, true
	case *sqlparse.UnaryExpr:
		if n.Op != "-" {
			return nil, false
		}
		x, ok := vc.compileNum(n.Expr)
		if !ok {
			return nil, false
		}
		switch x.kind() {
		case KindNull:
			return x, true
		case KindInt, KindFloat:
			return &negNum{x: x, k: x.kind(), ints: make([]int64, vecChunk), floats: make([]float64, vecChunk)}, true
		}
		return nil, false // row engine errors on negating dates/bools
	}
	return nil, false
}

// --- comparison opcodes ---

const (
	opEQ = iota
	opNE
	opLT
	opLE
	opGT
	opGE
)

func cmpOpCode(op string) (int, bool) {
	switch op {
	case "=":
		return opEQ, true
	case "<>":
		return opNE, true
	case "<":
		return opLT, true
	case "<=":
		return opLE, true
	case ">":
		return opGT, true
	case ">=":
		return opGE, true
	}
	return 0, false
}

// flipCmp mirrors an operator across the operands: a<b == b>a.
func flipCmp(op int) int {
	switch op {
	case opLT:
		return opGT
	case opLE:
		return opGE
	case opGT:
		return opLT
	case opGE:
		return opLE
	}
	return op // =, <> are symmetric
}

// cmpMatch applies an opcode to a three-way comparison result.
func cmpMatch(op, c int) bool {
	switch op {
	case opEQ:
		return c == 0
	case opNE:
		return c != 0
	case opLT:
		return c < 0
	case opLE:
		return c <= 0
	case opGT:
		return c > 0
	default:
		return c >= 0
	}
}

// floatCmp replicates Value.Compare's float ordering (NaN compares
// equal to everything, as "not less and not greater") then applies op.
func floatCmp(op int, a, b float64) bool {
	switch op {
	case opEQ:
		return !(a < b) && !(a > b)
	case opNE:
		return a < b || a > b
	case opLT:
		return a < b
	case opLE:
		return !(a > b)
	case opGT:
		return a > b
	default:
		return !(a < b)
	}
}

// --- boolean nodes ---

type numCmpNode struct {
	op   int
	l, r numNode
}

func (n *numCmpNode) eval(lo, hi int, out []bool) {
	lc := n.l.eval(lo, hi)
	rc := n.r.eval(lo, hi)
	lf, rf := lc.floats, rc.floats
	if lc.null == nil && rc.null == nil {
		switch n.op {
		case opEQ:
			for i := range out {
				out[i] = !(lf[i] < rf[i]) && !(lf[i] > rf[i])
			}
		case opNE:
			for i := range out {
				out[i] = lf[i] < rf[i] || lf[i] > rf[i]
			}
		case opLT:
			for i := range out {
				out[i] = lf[i] < rf[i]
			}
		case opLE:
			for i := range out {
				out[i] = !(lf[i] > rf[i])
			}
		case opGT:
			for i := range out {
				out[i] = lf[i] > rf[i]
			}
		default:
			for i := range out {
				out[i] = !(lf[i] < rf[i])
			}
		}
		return
	}
	for i := range out {
		if (lc.null != nil && lc.null[i]) || (rc.null != nil && rc.null[i]) {
			out[i] = false // NULL comparisons are never true
			continue
		}
		out[i] = floatCmp(n.op, lf[i], rf[i])
	}
}

// strTableNode answers string-column predicates from a per-dictionary-
// code truth table computed at compile time (comparisons, LIKE, IN).
// whenNull is the result for NULL rows.
type strTableNode struct {
	c        *colData
	table    []bool
	whenNull bool
}

func (n *strTableNode) eval(lo, hi int, out []bool) {
	for i := range out {
		abs := lo + i
		if n.c.nulls.get(abs) {
			out[i] = n.whenNull
			continue
		}
		out[i] = n.table[n.c.codes[abs]]
	}
}

type andNode struct {
	l, r boolNode
	buf  []bool
}

func (n *andNode) eval(lo, hi int, out []bool) {
	n.l.eval(lo, hi, out)
	rb := n.buf[:len(out)]
	n.r.eval(lo, hi, rb)
	for i := range out {
		out[i] = out[i] && rb[i]
	}
}

type orNode struct {
	l, r boolNode
	buf  []bool
}

func (n *orNode) eval(lo, hi int, out []bool) {
	n.l.eval(lo, hi, out)
	rb := n.buf[:len(out)]
	n.r.eval(lo, hi, rb)
	for i := range out {
		out[i] = out[i] || rb[i]
	}
}

type notNode struct {
	x boolNode
}

func (n *notNode) eval(lo, hi int, out []bool) {
	n.x.eval(lo, hi, out)
	for i := range out {
		out[i] = !out[i]
	}
}

type constBoolNode struct {
	val bool
}

func (n *constBoolNode) eval(lo, hi int, out []bool) {
	for i := range out {
		out[i] = n.val
	}
}

// boolColNode is a bare BOOLEAN column used as a predicate.
type boolColNode struct {
	c *colData
}

func (n *boolColNode) eval(lo, hi int, out []bool) {
	for i := range out {
		abs := lo + i
		out[i] = !n.c.nulls.get(abs) && n.c.ints[abs] != 0
	}
}

type betweenNode struct {
	v, lo, hi numNode
	not       bool
}

func (n *betweenNode) eval(lo, hi int, out []bool) {
	vc := n.v.eval(lo, hi)
	lc := n.lo.eval(lo, hi)
	hc := n.hi.eval(lo, hi)
	for i := range out {
		if (vc.null != nil && vc.null[i]) || (lc.null != nil && lc.null[i]) || (hc.null != nil && hc.null[i]) {
			out[i] = n.not // row semantics: NULL operand -> NewBool(Not)
			continue
		}
		in := !(vc.floats[i] < lc.floats[i]) && !(vc.floats[i] > hc.floats[i])
		out[i] = in != n.not
	}
}

type inNumNode struct {
	v    numNode
	vals []float64
	not  bool
}

func (n *inNumNode) eval(lo, hi int, out []bool) {
	ch := n.v.eval(lo, hi)
	for i := range out {
		if ch.null != nil && ch.null[i] {
			out[i] = n.not // found stays false; result = found != Not
			continue
		}
		f := ch.floats[i]
		found := false
		for _, x := range n.vals {
			if !(f < x) && !(f > x) {
				found = true
				break
			}
		}
		out[i] = found != n.not
	}
}

// nullLaner exposes just the NULL lane of an operand (for IS NULL and
// COUNT(col)).
type nullLaner interface {
	nullLane(lo, hi int) []bool // nil = no NULLs in the chunk
}

type colLane struct {
	c   *colData
	buf []bool
}

func (l *colLane) nullLane(lo, hi int) []bool { return l.c.fillNulls(lo, hi, l.buf) }

type numLane struct {
	n numNode
}

func (l *numLane) nullLane(lo, hi int) []bool { return l.n.eval(lo, hi).null }

type constLane struct {
	allNull bool
	buf     []bool // prefilled true when allNull
}

func (l *constLane) nullLane(lo, hi int) []bool {
	if !l.allNull {
		return nil
	}
	return l.buf[:hi-lo]
}

type isNullNode struct {
	src nullLaner
	not bool
}

func (n *isNullNode) eval(lo, hi int, out []bool) {
	lane := n.src.nullLane(lo, hi)
	for i := range out {
		isn := lane != nil && lane[i]
		out[i] = isn != n.not
	}
}

// compileNullLane compiles the operand of IS [NOT] NULL / COUNT(col).
func (vc *vecCompiler) compileNullLane(e sqlparse.Expr) (nullLaner, bool) {
	switch n := e.(type) {
	case *sqlparse.ColumnRef:
		c, ok := vc.col(n)
		if !ok {
			return nil, false
		}
		return &colLane{c: c, buf: make([]bool, vecChunk)}, true
	case *sqlparse.Literal:
		switch n.Kind {
		case sqlparse.LitNull:
			buf := make([]bool, vecChunk)
			for i := range buf {
				buf[i] = true
			}
			return &constLane{allNull: true, buf: buf}, true
		case sqlparse.LitDate:
			if _, err := ParseDate(n.S); err != nil {
				return nil, false
			}
			return &constLane{}, true
		default:
			return &constLane{}, true
		}
	}
	if num, ok := vc.compileNum(e); ok {
		return &numLane{n: num}, true
	}
	return nil, false
}

// --- predicate compilation ---

func (vc *vecCompiler) compilePred(e sqlparse.Expr) (boolNode, bool) {
	switch n := e.(type) {
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "and":
			l, ok := vc.compilePred(n.Left)
			if !ok {
				return nil, false
			}
			r, ok := vc.compilePred(n.Right)
			if !ok {
				return nil, false
			}
			return &andNode{l: l, r: r, buf: make([]bool, vecChunk)}, true
		case "or":
			l, ok := vc.compilePred(n.Left)
			if !ok {
				return nil, false
			}
			r, ok := vc.compilePred(n.Right)
			if !ok {
				return nil, false
			}
			return &orNode{l: l, r: r, buf: make([]bool, vecChunk)}, true
		case "=", "<>", "<", "<=", ">", ">=":
			return vc.compileCmp(n)
		case "like":
			return vc.compileLike(n)
		}
		return nil, false
	case *sqlparse.UnaryExpr:
		if n.Op != "not" {
			return nil, false
		}
		x, ok := vc.compilePred(n.Expr)
		if !ok {
			return nil, false
		}
		return &notNode{x: x}, true
	case *sqlparse.BetweenExpr:
		return vc.compileBetween(n)
	case *sqlparse.InExpr:
		return vc.compileIn(n)
	case *sqlparse.IsNullExpr:
		src, ok := vc.compileNullLane(n.Expr)
		if !ok {
			return nil, false
		}
		return &isNullNode{src: src, not: n.Not}, true
	case *sqlparse.ColumnRef:
		c, ok := vc.col(n)
		if !ok {
			return nil, false
		}
		if c.kind == KindBool {
			return &boolColNode{c: c}, true
		}
		return &constBoolNode{}, true // Bool() of non-boolean values is false
	case *sqlparse.Literal:
		switch n.Kind {
		case sqlparse.LitBool:
			return &constBoolNode{val: n.B}, true
		case sqlparse.LitDate:
			if _, err := ParseDate(n.S); err != nil {
				return nil, false
			}
			return &constBoolNode{}, true
		default:
			return &constBoolNode{}, true
		}
	}
	return nil, false
}

func stringLit(e sqlparse.Expr) (string, bool) {
	if l, ok := e.(*sqlparse.Literal); ok && l.Kind == sqlparse.LitString {
		return l.S, true
	}
	return "", false
}

// tryStrCmp handles string-column <op> string-literal. done reports
// that this operand pairing is a string-column comparison (so the
// caller must not fall through to numeric compilation); ok is whether
// it compiled.
func (vc *vecCompiler) tryStrCmp(colSide, litSide sqlparse.Expr, op int) (boolNode, bool, bool) {
	cr, isCol := colSide.(*sqlparse.ColumnRef)
	if !isCol {
		return nil, false, false
	}
	c, resolved := vc.col(cr)
	if !resolved || c.kind != KindString {
		return nil, false, false
	}
	lit, isStr := stringLit(litSide)
	if !isStr {
		// string column vs non-string operand: heterogeneous tag
		// comparison or per-row coercion; let the row engine do it.
		return nil, false, true
	}
	table := make([]bool, len(c.dict))
	for k, s := range c.dict {
		table[k] = cmpMatch(op, strings.Compare(s, lit))
	}
	return &strTableNode{c: c, table: table}, true, true
}

func (vc *vecCompiler) compileCmp(n *sqlparse.BinaryExpr) (boolNode, bool) {
	op, ok := cmpOpCode(n.Op)
	if !ok {
		return nil, false
	}
	if node, compiled, done := vc.tryStrCmp(n.Left, n.Right, op); done {
		return node, compiled
	}
	if node, compiled, done := vc.tryStrCmp(n.Right, n.Left, flipCmp(op)); done {
		return node, compiled
	}
	ln, lok := vc.compileNum(n.Left)
	rn, rok := vc.compileNum(n.Right)
	// compareCoerced parses an ISO string literal compared against a
	// DATE; fold the parse to compile time. A failed parse degrades to
	// a heterogeneous tag comparison in the row engine — decline.
	if lok && !rok && ln.kind() == KindDate {
		if s, isStr := stringLit(n.Right); isStr {
			d, err := ParseDate(s)
			if err != nil {
				return nil, false
			}
			rn, rok = vc.constNode(d), true
		}
	}
	if rok && !lok && rn.kind() == KindDate {
		if s, isStr := stringLit(n.Left); isStr {
			d, err := ParseDate(s)
			if err != nil {
				return nil, false
			}
			ln, lok = vc.constNode(d), true
		}
	}
	if !lok || !rok {
		return nil, false
	}
	return &numCmpNode{op: op, l: ln, r: rn}, true
}

func (vc *vecCompiler) compileLike(n *sqlparse.BinaryExpr) (boolNode, bool) {
	cr, isCol := n.Left.(*sqlparse.ColumnRef)
	if !isCol {
		return nil, false
	}
	c, resolved := vc.col(cr)
	if !resolved {
		return nil, false
	}
	lit, isLit := n.Right.(*sqlparse.Literal)
	if !isLit {
		return nil, false
	}
	if lit.Kind == sqlparse.LitDate {
		if _, err := ParseDate(lit.S); err != nil {
			return nil, false
		}
	}
	// Row semantics: LIKE is false unless both sides are strings
	// (NULL rows included: their kind is not KindString).
	if c.kind != KindString || lit.Kind != sqlparse.LitString {
		return &constBoolNode{}, true
	}
	table := make([]bool, len(c.dict))
	for k, s := range c.dict {
		table[k] = matchLike(s, lit.S)
	}
	return &strTableNode{c: c, table: table}, true
}

func (vc *vecCompiler) compileBetween(n *sqlparse.BetweenExpr) (boolNode, bool) {
	v, ok := vc.compileNum(n.Expr)
	if !ok {
		return nil, false
	}
	isDate := v.kind() == KindDate
	bound := func(e sqlparse.Expr) (numNode, bool) {
		if s, isStr := stringLit(e); isStr && isDate {
			d, err := ParseDate(s)
			if err != nil {
				return nil, false
			}
			return vc.constNode(d), true
		}
		return vc.compileNum(e)
	}
	lo, ok := bound(n.Lo)
	if !ok {
		return nil, false
	}
	hi, ok := bound(n.Hi)
	if !ok {
		return nil, false
	}
	return &betweenNode{v: v, lo: lo, hi: hi, not: n.Not}, true
}

func (vc *vecCompiler) compileIn(n *sqlparse.InExpr) (boolNode, bool) {
	// String column IN (literals...): dictionary truth table.
	if cr, isCol := n.Expr.(*sqlparse.ColumnRef); isCol {
		if c, resolved := vc.col(cr); resolved && c.kind == KindString {
			set := make(map[string]bool, len(n.List))
			for _, item := range n.List {
				lit, isLit := item.(*sqlparse.Literal)
				if !isLit {
					return nil, false
				}
				switch lit.Kind {
				case sqlparse.LitString:
					set[lit.S] = true
				case sqlparse.LitDate:
					// compareCoerced would parse the column string per
					// row against a DATE item; decline.
					return nil, false
				default:
					// NULL items are skipped; other kinds never equal a
					// string (tag comparison).
				}
			}
			table := make([]bool, len(c.dict))
			for k, s := range c.dict {
				table[k] = set[s] != n.Not
			}
			return &strTableNode{c: c, table: table, whenNull: n.Not}, true
		}
	}
	v, ok := vc.compileNum(n.Expr)
	if !ok {
		return nil, false
	}
	isDate := v.kind() == KindDate
	vals := make([]float64, 0, len(n.List))
	for _, item := range n.List {
		lit, isLit := item.(*sqlparse.Literal)
		if !isLit {
			return nil, false
		}
		switch lit.Kind {
		case sqlparse.LitNull:
			// NULL items never match; skip.
		case sqlparse.LitInt:
			vals = append(vals, float64(lit.I))
		case sqlparse.LitFloat:
			vals = append(vals, lit.F)
		case sqlparse.LitBool:
			if lit.B {
				vals = append(vals, 1)
			} else {
				vals = append(vals, 0)
			}
		case sqlparse.LitDate:
			d, err := ParseDate(lit.S)
			if err != nil {
				return nil, false // row engine reports the parse error
			}
			vals = append(vals, float64(d.I))
		case sqlparse.LitString:
			if isDate {
				if d, err := ParseDate(lit.S); err == nil {
					vals = append(vals, float64(d.I))
				}
				// Unparseable string vs DATE: tag comparison, never
				// equal; skip.
			}
			// String items never equal non-date numerics; skip.
		}
	}
	return &inNumNode{v: v, vals: vals, not: n.Not}, true
}
