package engine

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serializes the relation with a typed two-row header: column
// names, then column kinds. Dates render as ISO strings, NULLs as empty
// cells. The format round-trips through ReadCSV, letting synopsis
// relations be stored compactly and reloaded without rebuilding (the
// paper's "sampled tuples can be stored compactly" advantage of
// precomputed samples).
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	names := make([]string, r.Schema.Len())
	kinds := make([]string, r.Schema.Len())
	for i, c := range r.Schema.Cols {
		names[i] = c.Name
		kinds[i] = c.Kind.String()
	}
	if err := cw.Write(names); err != nil {
		return err
	}
	if err := cw.Write(kinds); err != nil {
		return err
	}
	cells := make([]string, r.Schema.Len())
	for _, row := range r.Rows() {
		for i, v := range row {
			if v.IsNull() {
				cells[i] = ""
				continue
			}
			cells[i] = v.String()
		}
		if err := cw.Write(cells); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a relation previously written by WriteCSV (or any CSV
// with the same two-row typed header).
func ReadCSV(name string, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.ReuseRecord = true
	names, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("engine: csv header: %w", err)
	}
	names = append([]string(nil), names...)
	kindRow, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("engine: csv kind row: %w", err)
	}
	cols := make([]Column, len(names))
	for i, n := range names {
		kind, err := parseKind(kindRow[i])
		if err != nil {
			return nil, err
		}
		cols[i] = Column{Name: n, Kind: kind}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	rel := NewRelation(name, schema)
	for line := 3; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("engine: csv line %d: %w", line, err)
		}
		row := make(Row, len(cols))
		for i, cell := range rec {
			v, err := parseCell(cell, cols[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("engine: csv line %d column %s: %w", line, cols[i].Name, err)
			}
			row[i] = v
		}
		if err := rel.Insert(row); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func parseKind(s string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INTEGER", "INT":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL":
		return KindFloat, nil
	case "VARCHAR", "STRING", "TEXT":
		return KindString, nil
	case "DATE":
		return KindDate, nil
	case "BOOLEAN", "BOOL":
		return KindBool, nil
	default:
		return 0, fmt.Errorf("engine: unknown column kind %q", s)
	}
}

func parseCell(cell string, kind Kind) (Value, error) {
	if cell == "" {
		return Null, nil
	}
	switch kind {
	case KindInt:
		i, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return Null, err
		}
		return NewInt(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return Null, err
		}
		return NewFloat(f), nil
	case KindDate:
		return ParseDate(cell)
	case KindBool:
		switch strings.ToLower(cell) {
		case "true", "t", "1":
			return NewBool(true), nil
		case "false", "f", "0":
			return NewBool(false), nil
		default:
			return Null, fmt.Errorf("bad boolean %q", cell)
		}
	default:
		return NewString(cell), nil
	}
}
