package engine

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-42), "-42"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{MustParseDate("1998-09-01"), "1998-09-01"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParseDate(t *testing.T) {
	v, err := ParseDate("1970-01-02")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 1 {
		t.Errorf("1970-01-02 = %d epoch days, want 1", v.I)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("bad date accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseDate on garbage did not panic")
		}
	}()
	MustParseDate("garbage")
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewFloat(2.5), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{MustParseDate("1998-01-01"), MustParseDate("1998-06-01"), -1},
		{NewBool(true), NewBool(false), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	vals := []Value{Null, NewInt(1), NewInt(5), NewFloat(3.2), NewString("x"), NewBool(true), MustParseDate("2000-01-01")}
	for _, a := range vals {
		for _, b := range vals {
			if a.Compare(b) != -b.Compare(a) {
				t.Errorf("Compare(%v,%v) not antisymmetric", a, b)
			}
		}
	}
}

func TestGroupKeyDistinctness(t *testing.T) {
	vals := []Value{
		Null, NewBool(true), NewBool(false),
		NewInt(0), NewInt(1), NewInt(-1),
		NewFloat(0), NewFloat(1.5),
		NewString(""), NewString("a"), NewString("n"),
		NewDate(0), NewDate(1),
	}
	seen := make(map[string]Value)
	for _, v := range vals {
		k := v.GroupKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("GroupKey collision between %v (%s) and %v", prev, prev.K, v)
		}
		seen[k] = v
	}
}

func TestGroupKeyIntRoundTrip(t *testing.T) {
	f := func(a, b int64) bool {
		ka := NewInt(a).GroupKey()
		kb := NewInt(b).GroupKey()
		return (ka == kb) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if f, ok := NewInt(7).AsFloat(); !ok || f != 7 {
		t.Error("int AsFloat failed")
	}
	if f, ok := NewFloat(2.5).AsFloat(); !ok || f != 2.5 {
		t.Error("float AsFloat failed")
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("string AsFloat succeeded")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("null AsFloat succeeded")
	}
	if i, ok := NewFloat(2.9).AsInt(); !ok || i != 2 {
		t.Error("float AsInt should truncate")
	}
	if i, ok := NewBool(true).AsInt(); !ok || i != 1 {
		t.Error("bool AsInt failed")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "NULL", KindBool: "BOOLEAN", KindInt: "INTEGER",
		KindFloat: "FLOAT", KindString: "VARCHAR", KindDate: "DATE",
	} {
		if k.String() != want {
			t.Errorf("Kind %d String = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
