// Package engine implements the in-memory relational substrate that the
// congressional-samples middleware runs on: typed values, schemas,
// relations, a catalog, and a SQL executor for the dialect produced by
// the query rewriters of Section 5 of the paper.
//
// The engine plays the role Oracle v7 played in the paper's testbed
// (Section 7.1): it stores both base relations and sample relations and
// executes the rewritten queries. It is deliberately simple — row-store,
// hash aggregation, hash and nested-loop joins — but complete enough to
// run every query shape the paper uses, including nested group-by
// subqueries (Nested-integrated rewriting) and sample/aux joins
// (Normalized and Key-normalized rewriting).
package engine

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the runtime types a Value can take.
type Kind uint8

// Supported value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate // stored as days since 1970-01-01 (UTC)
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind is the inverse of Kind.String: it resolves the SQL-ish name
// back to the kind. Distributed coordinators use it to reconstruct
// shard schemas shipped over /v1/synopses.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "NULL":
		return KindNull, nil
	case "BOOLEAN":
		return KindBool, nil
	case "INTEGER":
		return KindInt, nil
	case "FLOAT":
		return KindFloat, nil
	case "VARCHAR":
		return KindString, nil
	case "DATE":
		return KindDate, nil
	}
	return KindNull, fmt.Errorf("engine: unknown kind %q", s)
}

// Value is a dynamically typed SQL value. The zero Value is NULL.
//
// Values are small (no pointers beyond the string header) and passed by
// value throughout the engine.
type Value struct {
	K Kind
	I int64   // KindInt, KindDate (epoch days), KindBool (0 or 1)
	F float64 // KindFloat
	S string  // KindString
}

// Null is the SQL NULL value.
var Null = Value{K: KindNull}

// NewInt returns an INTEGER value.
func NewInt(i int64) Value { return Value{K: KindInt, I: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{K: KindFloat, F: f} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{K: KindString, S: s} }

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value {
	if b {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool}
}

// NewDate returns a DATE value holding the given epoch-day count.
func NewDate(epochDays int64) Value { return Value{K: KindDate, I: epochDays} }

// ParseDate parses an ISO yyyy-mm-dd string into a DATE value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("engine: bad date %q: %w", s, err)
	}
	return NewDate(t.Unix() / 86400), nil
}

// MustParseDate is ParseDate but panics on error; for constants in tests
// and generators.
func MustParseDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool returns the boolean interpretation of v. NULL is false.
func (v Value) Bool() bool { return v.K == KindBool && v.I != 0 }

// AsFloat converts a numeric value to float64. NULL converts to 0 with
// ok=false; non-numeric kinds return ok=false.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.K {
	case KindInt, KindDate, KindBool:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// AsInt converts a numeric value to int64, truncating floats.
func (v Value) AsInt() (int64, bool) {
	switch v.K {
	case KindInt, KindDate, KindBool:
		return v.I, true
	case KindFloat:
		return int64(v.F), true
	default:
		return 0, false
	}
}

// numeric reports whether the kind participates in arithmetic.
func (k Kind) numeric() bool {
	return k == KindInt || k == KindFloat || k == KindDate || k == KindBool
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// NULL sorts before everything and equals only NULL. Numeric kinds
// compare numerically across int/float/date; strings compare
// lexicographically. Comparing a string with a number compares kind tags
// (stable but arbitrary), mirroring the lenient behaviour of the paper's
// testbed for heterogeneous columns.
func (v Value) Compare(o Value) int {
	if v.K == KindNull || o.K == KindNull {
		switch {
		case v.K == o.K:
			return 0
		case v.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.K.numeric() && o.K.numeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.K == KindString && o.K == KindString {
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		default:
			return 0
		}
	}
	// Heterogeneous: order by kind tag.
	switch {
	case v.K < o.K:
		return -1
	case v.K > o.K:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare equal.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// GroupKey returns a string usable as a hash key for grouping. Distinct
// values map to distinct keys; numerically equal int/float values map to
// the same key only if they are the same kind (group-by columns are
// homogeneous in practice).
func (v Value) GroupKey() string {
	return string(v.AppendGroupKey(nil))
}

// AppendGroupKey appends the GroupKey encoding of v to dst and returns
// the extended slice. Scan loops that build composite keys use it with a
// reused scratch buffer so the per-row key costs no allocation; the
// bytes appended are exactly GroupKey's.
func (v Value) AppendGroupKey(dst []byte) []byte {
	switch v.K {
	case KindNull:
		return append(dst, "\x00n"...)
	case KindBool:
		if v.I != 0 {
			return append(dst, "\x00t"...)
		}
		return append(dst, "\x00f"...)
	case KindInt:
		return strconv.AppendInt(append(dst, "\x00i"...), v.I, 36)
	case KindDate:
		return strconv.AppendInt(append(dst, "\x00d"...), v.I, 36)
	case KindFloat:
		return strconv.AppendUint(append(dst, "\x00g"...), math.Float64bits(v.F), 36)
	default:
		return append(append(dst, "\x00s"...), v.S...)
	}
}

// String renders the value for result display.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindDate:
		return time.Unix(v.I*86400, 0).UTC().Format("2006-01-02")
	default:
		return v.S
	}
}
