package engine

// Vectorized hash-aggregation kernels. Each vecAgg holds one state
// entry per group (struct-of-arrays) and replicates its row-engine
// accumulator's arithmetic exactly: same accumulation order (chunks are
// processed in row order, selection vectors ascend), same dual
// float/int SUM lanes, same Welford updates, same strict MIN/MAX
// comparisons that keep the first of equal values.

import (
	"math"

	"github.com/approxdb/congress/internal/sqlparse"
)

// vecAgg is one aggregate expression's vectorized accumulator.
type vecAgg interface {
	// push appends zero state for a newly created group.
	push()
	// update folds the selected rows of chunk [lo,hi) into group state.
	// sel holds chunk-relative row indices (ascending); gids is the
	// parallel group ordinal per selected row.
	update(lo, hi int, sel, gids []int32)
	// result materializes group g's aggregate Value, matching the row
	// accumulator's result() bit for bit.
	result(g int) Value
}

type countStarAgg struct {
	n []int64
}

func (a *countStarAgg) push() { a.n = append(a.n, 0) }

func (a *countStarAgg) update(lo, hi int, sel, gids []int32) {
	for _, g := range gids {
		a.n[g]++
	}
}

func (a *countStarAgg) result(g int) Value { return NewInt(a.n[g]) }

type countAgg struct {
	src nullLaner
	n   []int64
}

func (a *countAgg) push() { a.n = append(a.n, 0) }

func (a *countAgg) update(lo, hi int, sel, gids []int32) {
	null := a.src.nullLane(lo, hi)
	if null == nil {
		for _, g := range gids {
			a.n[g]++
		}
		return
	}
	for k, i := range sel {
		if !null[i] {
			a.n[gids[k]]++
		}
	}
}

func (a *countAgg) result(g int) Value { return NewInt(a.n[g]) }

// sumAgg implements SUM and AVG with sumAcc's dual accumulation: the
// float sum in row order plus the int sum; the arg's static kind plays
// sumAcc's anyF role (uniform column kinds make it per-group constant).
type sumAgg struct {
	arg    numNode
	isAvg  bool
	argInt bool // arg.kind() == KindInt -> integral SUM result
	sum    []float64
	intSum []int64
	n      []int64
}

func (a *sumAgg) push() {
	a.sum = append(a.sum, 0)
	a.intSum = append(a.intSum, 0)
	a.n = append(a.n, 0)
}

func (a *sumAgg) update(lo, hi int, sel, gids []int32) {
	ch := a.arg.eval(lo, hi)
	if ch.null == nil {
		for k, i := range sel {
			g := gids[k]
			a.n[g]++
			a.sum[g] += ch.floats[i]
			if a.argInt {
				a.intSum[g] += ch.ints[i]
			}
		}
		return
	}
	for k, i := range sel {
		if ch.null[i] {
			continue
		}
		g := gids[k]
		a.n[g]++
		a.sum[g] += ch.floats[i]
		if a.argInt {
			a.intSum[g] += ch.ints[i]
		}
	}
}

func (a *sumAgg) result(g int) Value {
	if a.n[g] == 0 {
		return Null
	}
	if a.isAvg {
		return NewFloat(a.sum[g] / float64(a.n[g]))
	}
	if a.argInt {
		return NewInt(a.intSum[g])
	}
	return NewFloat(a.sum[g])
}

// minMaxColAgg implements MIN/MAX over a bare column by remembering the
// winning row index, so result() rematerializes the original Value
// (kind and bits included) exactly as minMaxAcc keeps the first-seen
// best Value. Works for every uniform column kind including strings.
type minMaxColAgg struct {
	c     *colData
	isMax bool
	best  []int32 // absolute row index of the current best; -1 = none
}

func (a *minMaxColAgg) push() { a.best = append(a.best, -1) }

func (a *minMaxColAgg) update(lo, hi int, sel, gids []int32) {
	c := a.c
	if c.kind == KindNull {
		return // all-NULL column: aggregate stays NULL
	}
	for k, i := range sel {
		abs := lo + int(i)
		if c.nulls.get(abs) {
			continue
		}
		g := gids[k]
		cur := a.best[g]
		if cur < 0 {
			a.best[g] = int32(abs)
			continue
		}
		var cmp int
		if c.kind == KindString {
			sv, sb := c.dict[c.codes[abs]], c.dict[c.codes[cur]]
			switch {
			case sv < sb:
				cmp = -1
			case sv > sb:
				cmp = 1
			}
		} else {
			fv, fb := c.floats[abs], c.floats[cur]
			switch {
			case fv < fb:
				cmp = -1
			case fv > fb:
				cmp = 1
			}
		}
		if (a.isMax && cmp > 0) || (!a.isMax && cmp < 0) {
			a.best[g] = int32(abs)
		}
	}
}

func (a *minMaxColAgg) result(g int) Value {
	if a.best[g] < 0 {
		return Null
	}
	return a.c.valueAt(int(a.best[g]))
}

// minMaxNumAgg implements MIN/MAX over a computed numeric expression
// (result kinds are only Int or Float). Comparisons use the same
// NaN-keeps-first ordering as Value.Compare.
type minMaxNumAgg struct {
	arg    numNode
	isMax  bool
	argInt bool
	has    []bool
	bi     []int64
	bf     []float64
}

func (a *minMaxNumAgg) push() {
	a.has = append(a.has, false)
	a.bi = append(a.bi, 0)
	a.bf = append(a.bf, 0)
}

func (a *minMaxNumAgg) update(lo, hi int, sel, gids []int32) {
	ch := a.arg.eval(lo, hi)
	for k, i := range sel {
		if ch.null != nil && ch.null[i] {
			continue
		}
		g := gids[k]
		f := ch.floats[i]
		if !a.has[g] {
			a.has[g] = true
			a.bf[g] = f
			if a.argInt {
				a.bi[g] = ch.ints[i]
			}
			continue
		}
		if (a.isMax && f > a.bf[g]) || (!a.isMax && f < a.bf[g]) {
			a.bf[g] = f
			if a.argInt {
				a.bi[g] = ch.ints[i]
			}
		}
	}
}

func (a *minMaxNumAgg) result(g int) Value {
	if !a.has[g] {
		return Null
	}
	if a.argInt {
		return NewInt(a.bi[g])
	}
	return NewFloat(a.bf[g])
}

// varAgg implements VARIANCE/STDDEV with varAcc's Welford recurrence in
// row order.
type varAgg struct {
	arg   numNode
	isStd bool
	n     []int64
	mean  []float64
	m2    []float64
}

func (a *varAgg) push() {
	a.n = append(a.n, 0)
	a.mean = append(a.mean, 0)
	a.m2 = append(a.m2, 0)
}

func (a *varAgg) update(lo, hi int, sel, gids []int32) {
	ch := a.arg.eval(lo, hi)
	for k, i := range sel {
		if ch.null != nil && ch.null[i] {
			continue
		}
		g := gids[k]
		f := ch.floats[i]
		a.n[g]++
		d := f - a.mean[g]
		a.mean[g] += d / float64(a.n[g])
		a.m2[g] += d * (f - a.mean[g])
	}
}

func (a *varAgg) result(g int) Value {
	n := a.n[g]
	if n < 2 {
		if n == 1 {
			return NewFloat(0)
		}
		return Null
	}
	v := a.m2[g] / float64(n-1)
	if a.isStd {
		return NewFloat(math.Sqrt(v))
	}
	return NewFloat(v)
}

// errGroupState is one group's SUM_ERROR/AVG_ERROR state: per-scale-
// factor strata plus the scaled count (the AVG_ERROR denominator).
type errGroupState struct {
	strata      map[uint64]*stratumStats
	scaledCount float64
}

// errAgg implements the SUM_ERROR/AVG_ERROR pseudo-aggregates with
// errorAcc's exact per-stratum Welford accumulation. Variance sums
// strata in sorted key order via strataVariance, same as the row path.
type errAgg struct {
	val, sf numNode
	isAvg   bool
	groups  []errGroupState
}

func (a *errAgg) push() { a.groups = append(a.groups, errGroupState{}) }

func (a *errAgg) update(lo, hi int, sel, gids []int32) {
	vch := a.val.eval(lo, hi)
	sch := a.sf.eval(lo, hi)
	for k, i := range sel {
		// Row semantics: either operand NULL (AsFloat not-ok) skips the
		// tuple entirely.
		if (vch.null != nil && vch.null[i]) || (sch.null != nil && sch.null[i]) {
			continue
		}
		st := &a.groups[gids[k]]
		f := vch.floats[i]
		sf := sch.floats[i]
		if sf < 1 {
			sf = 1
		}
		st.scaledCount += sf
		key := math.Float64bits(sf)
		if st.strata == nil {
			st.strata = make(map[uint64]*stratumStats)
		}
		s := st.strata[key]
		if s == nil {
			s = &stratumStats{sf: sf}
			st.strata[key] = s
		}
		s.n++
		d := f - s.mean
		s.mean += d / float64(s.n)
		s.m2 += d * (f - s.mean)
	}
}

func (a *errAgg) result(g int) Value {
	st := &a.groups[g]
	if len(st.strata) == 0 {
		return Null
	}
	half := zScore90 * math.Sqrt(strataVariance(st.strata))
	if a.isAvg {
		if st.scaledCount <= 0 {
			return Null
		}
		return NewFloat(half / st.scaledCount)
	}
	return NewFloat(half)
}

// countErrAgg implements COUNT_ERROR: Var ≈ Σ SF(SF-1) over sampled
// tuples, as in countErrorAcc.
type countErrAgg struct {
	sf  numNode
	sum []float64
	n   []int64
}

func (a *countErrAgg) push() {
	a.sum = append(a.sum, 0)
	a.n = append(a.n, 0)
}

func (a *countErrAgg) update(lo, hi int, sel, gids []int32) {
	ch := a.sf.eval(lo, hi)
	for k, i := range sel {
		if ch.null != nil && ch.null[i] {
			continue
		}
		g := gids[k]
		sf := ch.floats[i]
		if sf < 1 {
			sf = 1
		}
		a.sum[g] += sf * (sf - 1)
		a.n[g]++
	}
}

func (a *countErrAgg) result(g int) Value {
	if a.n[g] == 0 {
		return Null
	}
	return NewFloat(zScore90 * math.Sqrt(a.sum[g]))
}

// compileAgg builds the vectorized accumulator for one aggregate call,
// declining whatever newAggregator would reject (so the row engine
// reports the identical error) plus the shapes the kernels do not
// cover (COUNT DISTINCT, non-numeric computed args).
func (vc *vecCompiler) compileAgg(f *sqlparse.FuncCall) (vecAgg, bool) {
	switch f.Name {
	case "count":
		if f.Star {
			return &countStarAgg{}, true
		}
		if len(f.Args) != 1 || f.Distinct {
			return nil, false
		}
		src, ok := vc.compileNullLane(f.Args[0])
		if !ok {
			return nil, false
		}
		return &countAgg{src: src}, true
	case "sum", "avg":
		if len(f.Args) != 1 {
			return nil, false
		}
		arg, ok := vc.compileNum(f.Args[0])
		if !ok {
			return nil, false
		}
		return &sumAgg{arg: arg, isAvg: f.Name == "avg", argInt: arg.kind() == KindInt}, true
	case "min", "max":
		if len(f.Args) != 1 {
			return nil, false
		}
		isMax := f.Name == "max"
		if cr, isCol := f.Args[0].(*sqlparse.ColumnRef); isCol {
			c, ok := vc.col(cr)
			if !ok {
				return nil, false
			}
			return &minMaxColAgg{c: c, isMax: isMax}, true
		}
		arg, ok := vc.compileNum(f.Args[0])
		if !ok {
			return nil, false
		}
		switch arg.kind() {
		case KindInt, KindFloat, KindNull:
			return &minMaxNumAgg{arg: arg, isMax: isMax, argInt: arg.kind() == KindInt}, true
		}
		// Const date/bool args would need kind-preserving
		// materialization; decline.
		return nil, false
	case "variance", "stddev":
		if len(f.Args) != 1 {
			return nil, false
		}
		arg, ok := vc.compileNum(f.Args[0])
		if !ok {
			return nil, false
		}
		return &varAgg{arg: arg, isStd: f.Name == "stddev"}, true
	case "sum_error", "avg_error":
		if len(f.Args) != 2 {
			return nil, false
		}
		val, ok := vc.compileNum(f.Args[0])
		if !ok {
			return nil, false
		}
		sf, ok := vc.compileNum(f.Args[1])
		if !ok {
			return nil, false
		}
		return &errAgg{val: val, sf: sf, isAvg: f.Name == "avg_error"}, true
	case "count_error":
		if len(f.Args) != 1 {
			return nil, false
		}
		sf, ok := vc.compileNum(f.Args[0])
		if !ok {
			return nil, false
		}
		return &countErrAgg{sf: sf}, true
	}
	return nil, false
}
