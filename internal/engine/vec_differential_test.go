package engine

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// This file holds the differential harness for the columnar engine: the
// row engine is the oracle, and every randomized query must come back
// bit-identical from both paths. The generator leans on TPC-D shapes
// (low-cardinality dimension strings, quantities, prices, dates) plus
// deliberately hostile columns: NULL-heavy values, a bool flag, and
// predicates tuned to produce empty groups.

// vecFuzzTable builds a deterministic lineitem-like relation.
func vecFuzzTable(rng *rand.Rand, n int) *Relation {
	rel := NewRelation("li", MustSchema(
		Column{Name: "status", Kind: KindString},
		Column{Name: "mode", Kind: KindString},
		Column{Name: "qty", Kind: KindInt},
		Column{Name: "price", Kind: KindFloat},
		Column{Name: "disc", Kind: KindFloat},
		Column{Name: "ship", Kind: KindDate},
		Column{Name: "ret", Kind: KindBool},
		Column{Name: "sparse", Kind: KindFloat},
	))
	statuses := []string{"A", "F", "N", "O"}
	modes := []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL"}
	rows := make([]Row, 0, n)
	for i := 0; i < n; i++ {
		row := Row{
			NewString(statuses[rng.Intn(len(statuses))]),
			NewString(modes[rng.Intn(len(modes))]),
			NewInt(int64(1 + rng.Intn(50))),
			NewFloat(math.Round(rng.Float64()*100000) / 100),
			NewFloat(float64(rng.Intn(11)) / 100),
			NewDate(9131 + int64(rng.Intn(1460))), // 1995..1998
			NewBool(rng.Intn(2) == 0),
			NewFloat(rng.NormFloat64() * 1000),
		}
		// NULL injection: each nullable column independently, with the
		// sparse column NULL-heavy so its aggregates exercise empty and
		// single-row groups.
		if rng.Intn(10) == 0 {
			row[0] = Null
		}
		if rng.Intn(8) == 0 {
			row[2] = Null
		}
		if rng.Intn(12) == 0 {
			row[3] = Null
		}
		if rng.Intn(15) == 0 {
			row[5] = Null
		}
		if rng.Intn(9) == 0 {
			row[6] = Null
		}
		if rng.Intn(10) != 0 {
			row[7] = Null
		}
		rows = append(rows, row)
	}
	if err := rel.InsertAll(rows); err != nil {
		panic(err)
	}
	return rel
}

// vecFuzzQuery emits one randomized scan-filter-aggregate statement.
func vecFuzzQuery(rng *rand.Rand) string {
	groupCols := [][]string{nil, {"status"}, {"mode"}, {"ret"}, {"status", "mode"}, {"mode", "ret"}}
	gb := groupCols[rng.Intn(len(groupCols))]

	aggs := []string{
		"sum(qty)", "sum(price)", "sum(sparse)", "avg(price)", "avg(qty)",
		"count(*)", "count(qty)", "count(sparse)", "min(price)", "max(price)",
		"min(qty)", "max(ship)", "min(status)", "variance(price)", "stddev(qty)",
		"sum(price * (1 - disc))", "sum(qty + 1)", "avg(price / qty)",
		"sum_error(price)", "avg_error(price)", "count_error(qty)",
	}
	nAgg := 1 + rng.Intn(3)
	items := append([]string{}, gb...)
	for i := 0; i < nAgg; i++ {
		items = append(items, aggs[rng.Intn(len(aggs))])
	}

	preds := []string{
		"qty > 25", "qty <= 10", "price >= 500.0", "price < 250.5",
		"status = 'A'", "status <> 'F'", "mode in ('AIR', 'RAIL')",
		"mode like 'S%'", "qty between 10 and 40", "ship >= '1997-01-01'",
		"ship between '1995-06-01' and '1996-06-01'", "sparse is not null",
		"sparse is null", "ret", "not ret", "disc = 0.05",
		"qty in (1, 2, 3)", "price > 99990.0", // near-empty result
		"qty * 2 > price / 10",
	}
	var where string
	switch rng.Intn(4) {
	case 0: // no predicate
	case 1:
		where = preds[rng.Intn(len(preds))]
	case 2:
		where = preds[rng.Intn(len(preds))] + " and " + preds[rng.Intn(len(preds))]
	default:
		where = "(" + preds[rng.Intn(len(preds))] + " or " + preds[rng.Intn(len(preds))] + ")"
	}

	var sb strings.Builder
	sb.WriteString("select " + strings.Join(items, ", ") + " from li")
	if where != "" {
		sb.WriteString(" where " + where)
	}
	if len(gb) > 0 {
		sb.WriteString(" group by " + strings.Join(gb, ", "))
		if rng.Intn(4) == 0 {
			sb.WriteString(" having count(*) > " + fmt.Sprint(rng.Intn(5)))
		}
		sb.WriteString(" order by " + strings.Join(gb, ", "))
	}
	if rng.Intn(5) == 0 {
		sb.WriteString(fmt.Sprintf(" limit %d", 1+rng.Intn(10)))
		if rng.Intn(2) == 0 {
			sb.WriteString(fmt.Sprintf(" offset %d", rng.Intn(3)))
		}
	}
	return sb.String()
}

// sameValue is bit-identity: same kind, same int payload, same string,
// and the same float bit pattern (so +0 vs -0 or differing NaN payloads
// fail — the columnar engine must replicate the row engine's float
// operation order exactly, not just approximately).
func sameValue(a, b Value) bool {
	return a.K == b.K && a.I == b.I && a.S == b.S &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

func diffResults(t *testing.T, query string, want, got *Result) {
	t.Helper()
	if len(want.Columns) != len(got.Columns) {
		t.Fatalf("%s\ncolumns: row %v vs vectorized %v", query, want.Columns, got.Columns)
	}
	for i := range want.Columns {
		if want.Columns[i] != got.Columns[i] {
			t.Fatalf("%s\ncolumn %d: row %q vs vectorized %q", query, i, want.Columns[i], got.Columns[i])
		}
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s\nrows: row engine %d vs vectorized %d", query, len(want.Rows), len(got.Rows))
	}
	for r := range want.Rows {
		for c := range want.Rows[r] {
			if !sameValue(want.Rows[r][c], got.Rows[r][c]) {
				t.Fatalf("%s\nrow %d col %d: row engine %#v vs vectorized %#v",
					query, r, c, want.Rows[r][c], got.Rows[r][c])
			}
		}
	}
}

// TestVectorizedDifferential runs hundreds of randomized queries through
// both engines and requires bit-identical results. It also requires that
// a healthy share actually exercised the columnar path — a regression
// that silently declines everything would otherwise pass vacuously.
func TestVectorizedDifferential(t *testing.T) {
	prev := SetVectorized(true)
	defer SetVectorized(prev)

	rng := rand.New(rand.NewSource(20260808))
	cat := NewCatalog()
	cat.Register(vecFuzzTable(rng, 4000))

	const queries = 250
	vectorized := 0
	for i := 0; i < queries; i++ {
		query := vecFuzzQuery(rng)

		SetVectorized(false)
		want, errRow := ExecuteSQL(cat, query)
		SetVectorized(true)
		v0, _ := ExecCounts()
		got, errVec := ExecuteSQL(cat, query)
		v1, _ := ExecCounts()
		if v1 > v0 {
			vectorized++
		}

		if (errRow == nil) != (errVec == nil) {
			t.Fatalf("%s\nerror mismatch: row %v vs vectorized %v", query, errRow, errVec)
		}
		if errRow != nil {
			if errRow.Error() != errVec.Error() {
				t.Fatalf("%s\nerror text: row %q vs vectorized %q", query, errRow, errVec)
			}
			continue
		}
		diffResults(t, query, want, got)
	}
	if vectorized < queries/2 {
		t.Fatalf("only %d/%d queries took the columnar path — eligibility regressed", vectorized, queries)
	}
	t.Logf("%d/%d queries vectorized", vectorized, queries)
}

// TestVectorizedDifferentialScan covers the non-aggregate scan path:
// filter + projection with expressions, DISTINCT, ORDER BY, LIMIT.
func TestVectorizedDifferentialScan(t *testing.T) {
	prev := SetVectorized(true)
	defer SetVectorized(prev)

	rng := rand.New(rand.NewSource(42))
	cat := NewCatalog()
	cat.Register(vecFuzzTable(rng, 1500))

	queries := []string{
		"select * from li where qty > 45",
		"select status, qty from li where mode = 'AIR' order by qty, status limit 20",
		"select qty, price, qty * price from li where price between 100.0 and 200.0 order by price",
		"select distinct status, mode from li where ret order by status, mode",
		"select mode from li where sparse is not null order by mode limit 50",
		"select status, ship from li where ship < '1995-03-01' order by ship, status",
		"select qty + 1, price - disc from li where status = 'O' and not ret order by qty limit 30 offset 5",
		"select upper(mode), qty from li where qty in (7, 11, 13) order by mode, qty",
		"select * from li where price > 99999.5 order by qty", // empty
	}
	for i, query := range queries {
		for seed := 0; seed < 3; seed++ { // three table shapes per query
			r2 := rand.New(rand.NewSource(int64(i*10 + seed)))
			c2 := NewCatalog()
			c2.Register(vecFuzzTable(r2, 400+seed*300))
			SetVectorized(false)
			want, errRow := ExecuteSQL(c2, query)
			SetVectorized(true)
			got, errVec := ExecuteSQL(c2, query)
			if (errRow == nil) != (errVec == nil) {
				t.Fatalf("%s\nerror mismatch: row %v vs vectorized %v", query, errRow, errVec)
			}
			if errRow != nil {
				continue
			}
			diffResults(t, query, want, got)
		}
		SetVectorized(false)
		want, errRow := ExecuteSQL(cat, query)
		SetVectorized(true)
		got, errVec := ExecuteSQL(cat, query)
		if (errRow == nil) != (errVec == nil) {
			t.Fatalf("%s\nerror mismatch: row %v vs vectorized %v", query, errRow, errVec)
		}
		if errRow == nil {
			diffResults(t, query, want, got)
		}
	}
}

// TestBatchCacheConcurrency hammers the batch cache from concurrent
// writers and readers. Run under -race this checks the version-guarded
// cache publication in Relation.Batch against Insert, InsertAll, and
// Update; without -race it still checks that every executed query sees
// internally consistent data (no torn batches: count(*) metadata always
// matches the rows actually scanned).
func TestBatchCacheConcurrency(t *testing.T) {
	prev := SetVectorized(true)
	defer SetVectorized(prev)

	rel := NewRelation("c", MustSchema(
		Column{Name: "g", Kind: KindString},
		Column{Name: "v", Kind: KindInt},
	))
	for i := 0; i < 256; i++ {
		rel.Insert(Row{NewString(fmt.Sprint("g", i%4)), NewInt(int64(i))})
	}
	cat := NewCatalog()
	cat.Register(rel)

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					rel.Insert(Row{NewString("g0"), NewInt(int64(i))})
				case 1:
					rel.InsertAll([]Row{
						{NewString("g1"), NewInt(int64(i))},
						{NewString("g2"), Null},
					})
				default:
					rel.Update(func(r Row) bool { return r[1].K == KindInt && r[1].I == int64(rng.Intn(64)) },
						func(r Row) Row { return Row{r[0], NewInt(r[1].I + 1)} })
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				b := rel.Batch()
				if b.NumRows() < 256 {
					t.Errorf("batch shrank to %d rows", b.NumRows())
					return
				}
				res, err := ExecuteSQL(cat, "select g, count(*), sum(v) from c group by g order by g")
				if err != nil {
					t.Error(err)
					return
				}
				var total int64
				for _, row := range res.Rows {
					total += row[1].I
				}
				if total < 256 {
					t.Errorf("query saw %d rows, fewer than the initial 256", total)
					return
				}
			}
		}()
	}
	// Readers run a fixed iteration budget; writers churn until they
	// finish, then everything drains.
	readers.Wait()
	close(stop)
	writers.Wait()
}
