package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/approxdb/congress/internal/sqlparse"
)

// sortableRow pairs an output row with its precomputed ORDER BY keys.
type sortableRow struct {
	row  Row
	keys []Value
}

// zScore90 is the 90% two-sided normal critical value. The paper's Aqua
// prototype reports error bounds at 90% confidence (Section 2,
// footnote 6); the *_error pseudo-aggregates use the same default.
const zScore90 = 1.6448536269514722

// aggregate executes the grouped-aggregation path: it hashes input rows
// into groups on the GROUP BY keys, feeds each group's rows into one
// accumulator per distinct aggregate expression, then evaluates the
// select list (and HAVING and ORDER BY keys) once per group with the
// aggregate results bound.
func aggregate(goCtx context.Context, items []sqlparse.SelectItem, groupBy []sqlparse.Expr, having sqlparse.Expr, orderBy []sqlparse.OrderItem, in *input) ([]sortableRow, error) {
	aggExprs := collectAggExprs(items, having, orderBy)

	type group struct {
		rep  Row // representative row for evaluating group-by columns
		accs []aggregator
	}
	groups := make(map[string]*group)
	var order []string // first-appearance order for deterministic output

	ctx := &evalCtx{env: in.env}
	var kb []byte // reused scratch: the composite key allocates only for new groups
	for ri, r := range in.rows {
		if err := pollCtx(goCtx, ri); err != nil {
			return nil, err
		}
		ctx.row = r
		kb = kb[:0]
		for _, g := range groupBy {
			v, err := ctx.eval(g)
			if err != nil {
				return nil, err
			}
			kb = v.AppendGroupKey(kb)
		}
		grp, ok := groups[string(kb)]
		if !ok {
			grp = &group{rep: r, accs: make([]aggregator, len(aggExprs))}
			for i, f := range aggExprs {
				acc, err := newAggregator(f)
				if err != nil {
					return nil, err
				}
				grp.accs[i] = acc
			}
			key := string(kb)
			groups[key] = grp
			order = append(order, key)
		}
		for _, acc := range grp.accs {
			if err := acc.add(ctx); err != nil {
				return nil, err
			}
		}
	}

	// A global aggregate over zero rows still yields one (empty) group,
	// matching SQL semantics for SELECT COUNT(*) FROM empty.
	if len(groups) == 0 && len(groupBy) == 0 {
		grp := &group{rep: nil, accs: make([]aggregator, len(aggExprs))}
		for i, f := range aggExprs {
			acc, err := newAggregator(f)
			if err != nil {
				return nil, err
			}
			grp.accs[i] = acc
		}
		groups[""] = grp
		order = append(order, "")
	}

	results := make([]groupResult, 0, len(order))
	for _, key := range order {
		grp := groups[key]
		vals := make([]Value, len(aggExprs))
		for i := range grp.accs {
			vals[i] = grp.accs[i].result()
		}
		results = append(results, groupResult{rep: grp.rep, vals: vals})
	}
	return emitGroups(in.env, aggExprs, items, having, orderBy, results)
}

// collectAggExprs gathers the distinct aggregate calls (keyed by their
// rendering) appearing in the select list, HAVING, or ORDER BY.
func collectAggExprs(items []sqlparse.SelectItem, having sqlparse.Expr, orderBy []sqlparse.OrderItem) []*sqlparse.FuncCall {
	aggExprs := make([]*sqlparse.FuncCall, 0, 4)
	seen := make(map[string]bool)
	collect := func(e sqlparse.Expr) {
		sqlparse.Walk(e, func(n sqlparse.Expr) bool {
			if f, ok := n.(*sqlparse.FuncCall); ok && sqlparse.AggregateFuncs[f.Name] {
				key := f.String()
				if !seen[key] {
					seen[key] = true
					aggExprs = append(aggExprs, f)
				}
				return false // no nested aggregates
			}
			return true
		})
	}
	for _, item := range items {
		collect(item.Expr)
	}
	collect(having)
	for _, o := range orderBy {
		collect(o.Expr)
	}
	return aggExprs
}

// groupResult is one hashed group ready for output evaluation: its
// representative input row (nil for the synthesized empty global group)
// and the computed aggregate values, parallel to the aggExprs slice.
type groupResult struct {
	rep  Row
	vals []Value
}

// emitGroups evaluates HAVING, the select list, and the ORDER BY keys
// once per group with the aggregate results bound, producing the
// pre-sort output rows. Shared by the row and vectorized executors so
// per-group evaluation semantics are identical by construction.
func emitGroups(env *rowEnv, aggExprs []*sqlparse.FuncCall, items []sqlparse.SelectItem, having sqlparse.Expr, orderBy []sqlparse.OrderItem, groups []groupResult) ([]sortableRow, error) {
	var out []sortableRow
	for _, grp := range groups {
		gctx := &evalCtx{env: env, row: grp.rep, aggs: make(map[string]Value, len(aggExprs))}
		for i, f := range aggExprs {
			gctx.aggs[f.String()] = grp.vals[i]
		}
		if having != nil {
			hv, err := gctx.eval(having)
			if err != nil {
				return nil, err
			}
			if !hv.Bool() {
				continue
			}
		}
		row := make(Row, len(items))
		for i, item := range items {
			v, err := gctx.eval(item.Expr)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		var keys []Value
		for _, o := range orderBy {
			v, err := gctx.eval(o.Expr)
			if err != nil {
				return nil, err
			}
			keys = append(keys, v)
		}
		out = append(out, sortableRow{row: row, keys: keys})
	}
	return out, nil
}

// aggregator accumulates one aggregate expression over a group's rows.
type aggregator interface {
	add(ctx *evalCtx) error
	result() Value
}

func newAggregator(f *sqlparse.FuncCall) (aggregator, error) {
	switch f.Name {
	case "count":
		if f.Star {
			return &countAcc{}, nil
		}
		if len(f.Args) != 1 {
			return nil, fmt.Errorf("engine: COUNT expects one argument")
		}
		if f.Distinct {
			return &countDistinctAcc{arg: f.Args[0], seen: make(map[string]bool)}, nil
		}
		return &countAcc{arg: f.Args[0]}, nil
	case "sum", "avg":
		if len(f.Args) != 1 {
			return nil, fmt.Errorf("engine: %s expects one argument", strings.ToUpper(f.Name))
		}
		return &sumAcc{arg: f.Args[0], isAvg: f.Name == "avg"}, nil
	case "min", "max":
		if len(f.Args) != 1 {
			return nil, fmt.Errorf("engine: %s expects one argument", strings.ToUpper(f.Name))
		}
		return &minMaxAcc{arg: f.Args[0], isMax: f.Name == "max"}, nil
	case "variance", "stddev":
		if len(f.Args) != 1 {
			return nil, fmt.Errorf("engine: %s expects one argument", strings.ToUpper(f.Name))
		}
		return &varAcc{arg: f.Args[0], isStd: f.Name == "stddev"}, nil
	case "sum_error", "avg_error":
		if len(f.Args) != 2 {
			return nil, fmt.Errorf("engine: %s expects (value, scalefactor)", strings.ToUpper(f.Name))
		}
		return &errorAcc{val: f.Args[0], sf: f.Args[1], isAvg: f.Name == "avg_error"}, nil
	case "count_error":
		if len(f.Args) != 1 {
			return nil, fmt.Errorf("engine: COUNT_ERROR expects (scalefactor)")
		}
		return &countErrorAcc{sf: f.Args[0]}, nil
	default:
		return nil, fmt.Errorf("engine: unknown aggregate %s", strings.ToUpper(f.Name))
	}
}

type countAcc struct {
	arg sqlparse.Expr // nil for COUNT(*)
	n   int64
}

func (a *countAcc) add(ctx *evalCtx) error {
	if a.arg == nil {
		a.n++
		return nil
	}
	v, err := ctx.eval(a.arg)
	if err != nil {
		return err
	}
	if !v.IsNull() {
		a.n++
	}
	return nil
}

func (a *countAcc) result() Value { return NewInt(a.n) }

type countDistinctAcc struct {
	arg  sqlparse.Expr
	seen map[string]bool
}

func (a *countDistinctAcc) add(ctx *evalCtx) error {
	v, err := ctx.eval(a.arg)
	if err != nil {
		return err
	}
	if !v.IsNull() {
		a.seen[v.GroupKey()] = true
	}
	return nil
}

func (a *countDistinctAcc) result() Value { return NewInt(int64(len(a.seen))) }

type sumAcc struct {
	arg     sqlparse.Expr
	isAvg   bool
	sum     float64
	intSum  int64
	n       int64
	anyF    bool // saw a float input -> report float
	nonNull bool
}

func (a *sumAcc) add(ctx *evalCtx) error {
	v, err := ctx.eval(a.arg)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("engine: SUM/AVG over non-numeric value %s", v.K)
	}
	a.nonNull = true
	a.n++
	a.sum += f
	if v.K == KindInt {
		a.intSum += v.I
	} else {
		a.anyF = true
	}
	return nil
}

func (a *sumAcc) result() Value {
	if !a.nonNull {
		return Null
	}
	if a.isAvg {
		return NewFloat(a.sum / float64(a.n))
	}
	if !a.anyF {
		return NewInt(a.intSum)
	}
	return NewFloat(a.sum)
}

type minMaxAcc struct {
	arg   sqlparse.Expr
	isMax bool
	best  Value
	has   bool
}

func (a *minMaxAcc) add(ctx *evalCtx) error {
	v, err := ctx.eval(a.arg)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if !a.has {
		a.best = v
		a.has = true
		return nil
	}
	c := v.Compare(a.best)
	if a.isMax && c > 0 || !a.isMax && c < 0 {
		a.best = v
	}
	return nil
}

func (a *minMaxAcc) result() Value {
	if !a.has {
		return Null
	}
	return a.best
}

// varAcc computes sample variance (and stddev) via Welford's online
// algorithm for numerical stability.
type varAcc struct {
	arg   sqlparse.Expr
	isStd bool
	n     int64
	mean  float64
	m2    float64
}

func (a *varAcc) add(ctx *evalCtx) error {
	v, err := ctx.eval(a.arg)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("engine: VARIANCE over non-numeric value %s", v.K)
	}
	a.n++
	d := f - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (f - a.mean)
	return nil
}

func (a *varAcc) result() Value {
	if a.n < 2 {
		if a.n == 1 {
			return NewFloat(0)
		}
		return Null
	}
	v := a.m2 / float64(a.n-1)
	if a.isStd {
		return NewFloat(math.Sqrt(v))
	}
	return NewFloat(v)
}

// errorAcc implements Aqua's SUM_ERROR / AVG_ERROR pseudo-aggregates: a
// 90%-confidence half-width for the stratified expansion estimator.
// Sample tuples are grouped into strata by their scale factor (all
// tuples of one finest group share one SF, per Section 5.1); each
// stratum contributes SF^2 * n * (1 - 1/SF) * s^2 to the estimator's
// variance — the classic stratified-sampling variance estimate
// N_h^2 (1-f_h) s_h^2 / n_h of [Coc77] with N_h = SF*n_h.
type errorAcc struct {
	val, sf sqlparse.Expr
	isAvg   bool
	strata  map[uint64]*stratumStats
	// for AVG_ERROR: the scaled count (denominator of the ratio).
	scaledCount float64
}

type stratumStats struct {
	sf   float64
	n    int64
	mean float64
	m2   float64
}

func (a *errorAcc) add(ctx *evalCtx) error {
	if a.strata == nil {
		a.strata = make(map[uint64]*stratumStats)
	}
	v, err := ctx.eval(a.val)
	if err != nil {
		return err
	}
	sfv, err := ctx.eval(a.sf)
	if err != nil {
		return err
	}
	f, ok1 := v.AsFloat()
	sf, ok2 := sfv.AsFloat()
	if !ok1 || !ok2 {
		return nil
	}
	if sf < 1 {
		sf = 1
	}
	a.scaledCount += sf
	key := math.Float64bits(sf)
	st := a.strata[key]
	if st == nil {
		st = &stratumStats{sf: sf}
		a.strata[key] = st
	}
	st.n++
	d := f - st.mean
	st.mean += d / float64(st.n)
	st.m2 += d * (f - st.mean)
	return nil
}

func (a *errorAcc) variance() float64 { return strataVariance(a.strata) }

// strataVariance sums the per-stratum variance contributions in sorted
// key order. Iterating the map directly would sum floats in a random
// order and make the last bits of the result nondeterministic; both the
// row and vectorized *_error aggregates use this so repeated runs (and
// the differential test) see identical values.
func strataVariance(strata map[uint64]*stratumStats) float64 {
	keys := make([]uint64, 0, len(strata))
	for k := range strata {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var total float64
	for _, k := range keys {
		st := strata[k]
		if st.n < 2 {
			continue
		}
		s2 := st.m2 / float64(st.n-1)
		total += st.sf * st.sf * float64(st.n) * (1 - 1/st.sf) * s2
	}
	return total
}

func (a *errorAcc) result() Value {
	if len(a.strata) == 0 {
		return Null
	}
	half := zScore90 * math.Sqrt(a.variance())
	if a.isAvg {
		if a.scaledCount <= 0 {
			return Null
		}
		return NewFloat(half / a.scaledCount)
	}
	return NewFloat(half)
}

// countErrorAcc bounds the scaled COUNT estimator. Within a stratum the
// number of sampled tuples passing the predicate is hypergeometric; we
// use the binomial/Horvitz-Thompson approximation Var ≈ Σ SF(SF-1) over
// sampled tuples, which is exact for Poisson sampling and conservative
// for fixed-size strata.
type countErrorAcc struct {
	sf  sqlparse.Expr
	sum float64
	n   int64
}

func (a *countErrorAcc) add(ctx *evalCtx) error {
	sfv, err := ctx.eval(a.sf)
	if err != nil {
		return err
	}
	sf, ok := sfv.AsFloat()
	if !ok {
		return nil
	}
	if sf < 1 {
		sf = 1
	}
	a.sum += sf * (sf - 1)
	a.n++
	return nil
}

func (a *countErrorAcc) result() Value {
	if a.n == 0 {
		return Null
	}
	return NewFloat(zScore90 * math.Sqrt(a.sum))
}
