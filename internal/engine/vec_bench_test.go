package engine

import (
	"math/rand"
	"testing"
)

// benchCatalog builds an n-row lineitem-like table once per benchmark.
func benchCatalog(n int) *Catalog {
	cat := NewCatalog()
	cat.Register(vecFuzzTable(rand.New(rand.NewSource(1)), n))
	return cat
}

func benchQuery(b *testing.B, cat *Catalog, query string, vectorized bool) {
	b.Helper()
	prev := SetVectorized(vectorized)
	defer SetVectorized(prev)
	if vectorized {
		// Fail loudly if the query ever falls off the fast path — a
		// speedup measured against the row engine by accident is the
		// exact regression this harness exists to catch.
		v0, _ := ExecCounts()
		if _, err := ExecuteSQL(cat, query); err != nil {
			b.Fatal(err)
		}
		if v1, _ := ExecCounts(); v1 == v0 {
			b.Fatalf("query not vectorized: %s", query)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecuteSQL(cat, query); err != nil {
			b.Fatal(err)
		}
	}
}

const (
	benchRows     = 200_000
	benchAggQuery = "select status, mode, sum(price * (1 - disc)), sum(qty), avg(price), count(*) " +
		"from li where qty < 40 and ship >= '1996-01-01' group by status, mode order by status, mode"
	benchScanQuery = "select qty, price from li where price > 90000.0 and mode = 'AIR' order by price"
)

func BenchmarkVectorizedAggregate(b *testing.B) {
	benchQuery(b, benchCatalog(benchRows), benchAggQuery, true)
}

func BenchmarkRowEngineAggregate(b *testing.B) {
	benchQuery(b, benchCatalog(benchRows), benchAggQuery, false)
}

func BenchmarkVectorizedScan(b *testing.B) {
	benchQuery(b, benchCatalog(benchRows), benchScanQuery, true)
}

func BenchmarkRowEngineScan(b *testing.B) {
	benchQuery(b, benchCatalog(benchRows), benchScanQuery, false)
}
