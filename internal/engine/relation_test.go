package engine

import (
	"sync"
	"testing"
)

func TestSchemaBasics(t *testing.T) {
	s := MustSchema(
		Column{Name: "A", Kind: KindInt},
		Column{Name: "b", Kind: KindString},
	)
	if s.Len() != 2 {
		t.Fatalf("len=%d", s.Len())
	}
	if s.Index("a") != 0 || s.Index("B") != 1 {
		t.Error("case-insensitive lookup failed")
	}
	if s.Index("missing") != -1 {
		t.Error("missing column found")
	}
	if got := s.Names(); got[0] != "A" || got[1] != "b" {
		t.Errorf("names %v", got)
	}
}

func TestSchemaDuplicate(t *testing.T) {
	if _, err := NewSchema(Column{Name: "x"}, Column{Name: "X"}); err == nil {
		t.Error("duplicate column accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSchema did not panic on duplicate")
		}
	}()
	MustSchema(Column{Name: "x"}, Column{Name: "x"})
}

func TestSchemaProject(t *testing.T) {
	s := MustSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindFloat}, Column{Name: "c", Kind: KindString})
	p, err := s.Project("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Cols[0].Name != "c" || p.Cols[1].Kind != KindInt {
		t.Errorf("projection wrong: %+v", p.Cols)
	}
	if _, err := s.Project("nope"); err == nil {
		t.Error("projecting unknown column succeeded")
	}
}

func TestRelationInsertAndRows(t *testing.T) {
	rel := NewRelation("t", MustSchema(Column{Name: "a", Kind: KindInt}))
	if err := rel.Insert(Row{NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := rel.Insert(Row{NewInt(1), NewInt(2)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := rel.InsertAll([]Row{{NewInt(2)}, {NewInt(3)}}); err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 3 {
		t.Fatalf("rows=%d", rel.NumRows())
	}
	snap := rel.Rows()
	rel.Insert(Row{NewInt(4)})
	if len(snap) != 3 {
		t.Error("snapshot grew after insert")
	}
	rel.Truncate()
	if rel.NumRows() != 0 {
		t.Error("truncate left rows")
	}
}

func TestRelationConcurrentInsert(t *testing.T) {
	rel := NewRelation("t", MustSchema(Column{Name: "a", Kind: KindInt}))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rel.Insert(Row{NewInt(int64(g*100 + i))})
			}
		}(g)
	}
	wg.Wait()
	if rel.NumRows() != 800 {
		t.Fatalf("concurrent inserts lost rows: %d", rel.NumRows())
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].I != 1 {
		t.Error("clone aliases original")
	}
}

func TestCatalog(t *testing.T) {
	cat := NewCatalog()
	a := NewRelation("Orders", MustSchema(Column{Name: "id", Kind: KindInt}))
	cat.Register(a)
	if got, ok := cat.Lookup("orders"); !ok || got != a {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := cat.Lookup("nothing"); ok {
		t.Error("phantom table found")
	}
	b := NewRelation("lineitem", MustSchema(Column{Name: "id", Kind: KindInt}))
	cat.Register(b)
	names := cat.Names()
	if len(names) != 2 || names[0] != "Orders" && names[0] != "lineitem" {
		t.Errorf("names %v", names)
	}
	cat.Drop("ORDERS")
	if _, ok := cat.Lookup("orders"); ok {
		t.Error("drop failed")
	}
	cat.Drop("orders") // dropping absent is fine
}
