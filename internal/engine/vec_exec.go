package engine

// The vectorized executor: a planner gate that routes eligible
// single-table scan-filter-aggregate (and scan-filter-project)
// statements through columnar kernels, with the row engine as the
// fallback for everything else. Context cancellation is polled once per
// vecChunk instead of once per pollEvery rows.

import (
	"context"
	"math"
	"sync/atomic"

	"github.com/approxdb/congress/internal/sqlparse"
)

var (
	vecEnabled    atomic.Bool
	vecExecs      atomic.Int64
	fallbackExecs atomic.Int64
)

func init() { vecEnabled.Store(true) }

// SetVectorized toggles the vectorized execution path process-wide and
// returns the previous setting. Used by benchmarks and the differential
// test to force both engines over identical statements.
func SetVectorized(on bool) bool { return vecEnabled.Swap(on) }

// Vectorized reports whether the vectorized path is enabled.
func Vectorized() bool { return vecEnabled.Load() }

// ExecCounts returns the process-wide counts of statements executed by
// the vectorized path and by the row-engine fallback (statements with a
// FROM clause only; recursively executed derived tables count each
// inner statement). Exposed as congress_engine_vectorized_total and
// congress_engine_fallback_total telemetry.
func ExecCounts() (vectorized, fallback int64) {
	return vecExecs.Load(), fallbackExecs.Load()
}

// execVectorized attempts the columnar path for stmt. handled=false
// means the statement was declined before any work that could diverge
// from the row engine; the caller then runs the untouched row path.
// Once handled=true is returned the result (or error) is final.
func execVectorized(goCtx context.Context, cat *Catalog, stmt *sqlparse.SelectStmt) (res *Result, handled bool, err error) {
	if len(stmt.From) != 1 || len(stmt.Joins) > 0 || stmt.From[0].Subquery != nil || stmt.Distinct {
		return nil, false, nil
	}
	ref := stmt.From[0]
	rel, ok := cat.Lookup(ref.Name)
	if !ok {
		return nil, false, nil // fallback reports ErrUnknownTable
	}
	b := rel.Batch()
	if b.ragged || b.n == 0 {
		return nil, false, nil
	}
	qual := ref.Alias
	if qual == "" {
		qual = ref.Name
	}
	env := newRowEnv()
	for _, c := range rel.Schema.Cols {
		env.add(qual, c.Name)
	}
	p := buildProjection(stmt, env)

	if stmt.Where != nil && sqlparse.ContainsAggregate(stmt.Where) {
		return nil, false, nil // fallback raises "aggregate not allowed in WHERE"
	}
	vc := &vecCompiler{b: b, env: env}
	var pred boolNode
	if stmt.Where != nil {
		pred, ok = vc.compilePred(stmt.Where)
		if !ok {
			return nil, false, nil
		}
	}
	if p.hasAgg {
		return vc.runAggregate(goCtx, stmt, p, pred)
	}
	return vc.runScan(goCtx, stmt, p, pred)
}

// appendVecKey appends row's fixed-width group-key fragment for column
// c: a presence byte, then the value payload (width fixed per column).
// Because every column's payload width is statically known, composite
// keys are prefix-free and partition rows exactly as the row engine's
// concatenated GroupKey strings do (NUL-bearing string dictionaries are
// declined before we get here).
func appendVecKey(dst []byte, c *colData, row int) []byte {
	if c.kind == KindNull || c.nulls.get(row) {
		return append(dst, 0)
	}
	switch c.kind {
	case KindString:
		code := uint32(c.codes[row])
		return append(dst, 1, byte(code), byte(code>>8), byte(code>>16), byte(code>>24))
	case KindFloat:
		bits := math.Float64bits(c.floats[row])
		return append(dst, 1, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
			byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
	default: // Int, Date, Bool
		u := uint64(c.ints[row])
		return append(dst, 1, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
}

// buildSelection fills sel with the chunk-relative indices of rows
// passing pred (all rows when pred is nil).
func buildSelection(pred boolNode, lo, hi int, boolBuf []bool, sel []int32) []int32 {
	n := hi - lo
	sel = sel[:0]
	if pred == nil {
		for i := 0; i < n; i++ {
			sel = append(sel, int32(i))
		}
		return sel
	}
	out := boolBuf[:n]
	pred.eval(lo, hi, out)
	for i, pass := range out {
		if pass {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

// runAggregate executes the vectorized scan-filter-aggregate path:
// chunked selection, fixed-width group-key hashing with interned keys,
// struct-of-arrays accumulators, then the shared emitGroups /
// assembleResult tail so per-group output semantics are the row
// engine's own.
func (vc *vecCompiler) runAggregate(goCtx context.Context, stmt *sqlparse.SelectStmt, p projPlan, pred boolNode) (*Result, bool, error) {
	aggExprs := collectAggExprs(p.items, stmt.Having, p.orderBy)
	aggs := make([]vecAgg, len(aggExprs))
	for i, f := range aggExprs {
		a, ok := vc.compileAgg(f)
		if !ok {
			return nil, false, nil
		}
		aggs[i] = a
	}
	groupCols := make([]*colData, len(p.groupBy))
	for i, g := range p.groupBy {
		cr, isCol := g.(*sqlparse.ColumnRef)
		if !isCol {
			return nil, false, nil // expression group keys stay on the row path
		}
		c, ok := vc.col(cr)
		if !ok {
			return nil, false, nil
		}
		if c.kind == KindString && c.dictNUL {
			// NUL bytes inside values make the row engine's concatenated
			// keys ambiguous relative to our fixed-width ones; decline.
			return nil, false, nil
		}
		groupCols[i] = c
	}

	b := vc.b
	groups := make(map[string]int32)
	var repRows []int32 // absolute row index of each group's representative
	var kb []byte
	sel := make([]int32, 0, vecChunk)
	gids := make([]int32, 0, vecChunk)
	var boolBuf []bool
	if pred != nil {
		boolBuf = make([]bool, vecChunk)
	}
	for lo := 0; lo < b.n; lo += vecChunk {
		if err := goCtx.Err(); err != nil {
			return nil, true, err
		}
		hi := lo + vecChunk
		if hi > b.n {
			hi = b.n
		}
		sel = buildSelection(pred, lo, hi, boolBuf, sel)
		if len(sel) == 0 {
			continue
		}
		gids = gids[:0]
		if len(groupCols) == 0 {
			if len(repRows) == 0 {
				repRows = append(repRows, int32(lo)+sel[0])
				for _, a := range aggs {
					a.push()
				}
			}
			for range sel {
				gids = append(gids, 0)
			}
		} else {
			for _, i := range sel {
				abs := lo + int(i)
				kb = kb[:0]
				for _, c := range groupCols {
					kb = appendVecKey(kb, c, abs)
				}
				gid, ok := groups[string(kb)] // non-allocating lookup
				if !ok {
					gid = int32(len(repRows))
					groups[string(kb)] = gid // interns the key once per group
					repRows = append(repRows, int32(abs))
					for _, a := range aggs {
						a.push()
					}
				}
				gids = append(gids, gid)
			}
		}
		for _, a := range aggs {
			a.update(lo, hi, sel, gids)
		}
	}

	// Global aggregate over zero passing rows: one synthesized empty
	// group with no representative row.
	if len(repRows) == 0 && len(groupCols) == 0 {
		repRows = append(repRows, -1)
		for _, a := range aggs {
			a.push()
		}
	}

	results := make([]groupResult, len(repRows))
	for g := range repRows {
		vals := make([]Value, len(aggs))
		for i, a := range aggs {
			vals[i] = a.result(g)
		}
		var rep Row
		if repRows[g] >= 0 {
			rep = b.rows[repRows[g]]
		}
		results[g] = groupResult{rep: rep, vals: vals}
	}
	rows, err := emitGroups(vc.env, aggExprs, p.items, stmt.Having, p.orderBy, results)
	if err != nil {
		return nil, true, err
	}
	return assembleResult(stmt, p, rows), true, nil
}

// valProducer materializes one select-list or ORDER BY expression for
// passing rows: load is called once per chunk, value once per selected
// row (chunk-relative index).
type valProducer interface {
	load(lo, hi int)
	value(rel int) (Value, error)
}

// rowColProducer serves a bare column reference straight from the boxed
// row snapshot: exact kind and bits, any column kind including mixed.
type rowColProducer struct {
	rows []Row
	idx  int
	lo   int
}

func (p *rowColProducer) load(lo, hi int) { p.lo = lo }

func (p *rowColProducer) value(rel int) (Value, error) {
	return p.rows[p.lo+rel][p.idx], nil
}

// numProducer materializes a compiled numeric expression (result kinds
// are only Int, Float, or always-NULL).
type numProducer struct {
	n  numNode
	k  Kind
	ch numChunk
}

func (p *numProducer) load(lo, hi int) { p.ch = p.n.eval(lo, hi) }

func (p *numProducer) value(rel int) (Value, error) {
	if p.ch.null != nil && p.ch.null[rel] {
		return Null, nil
	}
	switch p.k {
	case KindInt:
		return NewInt(p.ch.ints[rel]), nil
	case KindFloat:
		return NewFloat(p.ch.floats[rel]), nil
	default:
		return Null, nil
	}
}

// evalProducer falls back to the row engine's evalCtx for expressions
// the kernels do not cover (scalar functions, CASE, string ops). The
// filter still runs vectorized; only the per-passing-row materialization
// is interpreted, and errors surface exactly as the row engine's.
type evalProducer struct {
	ec   *evalCtx
	expr sqlparse.Expr
	rows []Row
	lo   int
}

func (p *evalProducer) load(lo, hi int) { p.lo = lo }

func (p *evalProducer) value(rel int) (Value, error) {
	p.ec.row = p.rows[p.lo+rel]
	return p.ec.eval(p.expr)
}

func (vc *vecCompiler) compileProducer(e sqlparse.Expr, ec *evalCtx) valProducer {
	if cr, isCol := e.(*sqlparse.ColumnRef); isCol {
		if idx, err := vc.env.resolve(cr.Table, cr.Name); err == nil {
			return &rowColProducer{rows: vc.b.rows, idx: idx}
		}
		// Unresolvable references error per row in the row engine;
		// evalProducer reproduces the identical error.
	}
	if num, ok := vc.compileNum(e); ok {
		switch num.kind() {
		case KindInt, KindFloat, KindNull:
			return &numProducer{n: num, k: num.kind()}
		}
	}
	return &evalProducer{ec: ec, expr: e, rows: vc.b.rows}
}

// runScan executes the vectorized scan-filter-project path for
// non-aggregating statements.
func (vc *vecCompiler) runScan(goCtx context.Context, stmt *sqlparse.SelectStmt, p projPlan, pred boolNode) (*Result, bool, error) {
	ec := &evalCtx{env: vc.env}
	itemProds := make([]valProducer, len(p.items))
	for i, item := range p.items {
		itemProds[i] = vc.compileProducer(item.Expr, ec)
	}
	ordProds := make([]valProducer, len(p.orderBy))
	for i, o := range p.orderBy {
		ordProds[i] = vc.compileProducer(o.Expr, ec)
	}

	b := vc.b
	var rows []sortableRow
	sel := make([]int32, 0, vecChunk)
	var boolBuf []bool
	if pred != nil {
		boolBuf = make([]bool, vecChunk)
	}
	for lo := 0; lo < b.n; lo += vecChunk {
		if err := goCtx.Err(); err != nil {
			return nil, true, err
		}
		hi := lo + vecChunk
		if hi > b.n {
			hi = b.n
		}
		sel = buildSelection(pred, lo, hi, boolBuf, sel)
		if len(sel) == 0 {
			continue
		}
		for _, pr := range itemProds {
			pr.load(lo, hi)
		}
		for _, pr := range ordProds {
			pr.load(lo, hi)
		}
		for _, i := range sel {
			out := make(Row, len(itemProds))
			for ci, pr := range itemProds {
				v, err := pr.value(int(i))
				if err != nil {
					return nil, true, err
				}
				out[ci] = v
			}
			var keys []Value
			if len(ordProds) > 0 {
				keys = make([]Value, len(ordProds))
				for ki, pr := range ordProds {
					v, err := pr.value(int(i))
					if err != nil {
						return nil, true, err
					}
					keys[ki] = v
				}
			}
			rows = append(rows, sortableRow{row: out, keys: keys})
		}
	}
	return assembleResult(stmt, p, rows), true, nil
}
