package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/approxdb/congress/internal/sqlparse"
)

// ErrUnknownTable is wrapped by errors reporting a FROM-clause reference
// to a relation the catalog does not hold, so callers (the aqua router,
// the HTTP server) can distinguish "no such table" from other failures
// with errors.Is instead of string matching.
var ErrUnknownTable = errors.New("unknown table")

// pollEvery is how many rows a scan loop processes between context
// cancellation checks: small enough that a 1ms deadline interrupts a
// large scan promptly, large enough that the check is free on the
// fast path (a mask test plus a branch).
const pollEvery = 1024

// pollCtx returns the context's error every pollEvery-th iteration and
// nil otherwise. Call it with the loop index from every row-scan loop.
func pollCtx(ctx context.Context, i int) error {
	if i&(pollEvery-1) != 0 {
		return nil
	}
	return ctx.Err()
}

// Result is the output of executing a query: named columns and rows.
type Result struct {
	Columns []string
	Rows    []Row
}

// String renders the result as an aligned text table (for the CLI and
// examples).
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	rendered := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells := make([]string, len(row))
		for ci, v := range row {
			cells[ci] = v.String()
			if ci < len(widths) && len(cells[ci]) > widths[ci] {
				widths[ci] = len(cells[ci])
			}
		}
		rendered[ri] = cells
	}
	var sb strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[i], c)
	}
	sb.WriteByte('\n')
	for _, cells := range rendered {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ExecuteSQL parses and executes a query against the catalog.
func ExecuteSQL(cat *Catalog, query string) (*Result, error) {
	return ExecuteSQLCtx(context.Background(), cat, query)
}

// ExecuteSQLCtx parses and executes a query under a context: a deadline
// or cancellation is observed inside the row-scan loops, so a saturated
// or abandoned query stops promptly instead of finishing its scans.
func ExecuteSQLCtx(ctx context.Context, cat *Catalog, query string) (*Result, error) {
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, err
	}
	return ExecuteCtx(ctx, cat, stmt)
}

// Execute runs a parsed SELECT against the catalog.
func Execute(cat *Catalog, stmt *sqlparse.SelectStmt) (*Result, error) {
	return ExecuteCtx(context.Background(), cat, stmt)
}

// ExecuteCtx runs a parsed SELECT against the catalog, checking the
// context for cancellation every pollEvery scanned rows in every filter,
// join, aggregation, and projection loop (including recursively executed
// derived tables).
func ExecuteCtx(ctx context.Context, cat *Catalog, stmt *sqlparse.SelectStmt) (*Result, error) {
	if len(stmt.From) == 0 {
		return executeNoFrom(stmt)
	}

	// Route eligible single-table scan-filter-aggregate statements
	// through the columnar path; everything it declines (joins, nested
	// subqueries, unsupported expressions, mixed-kind columns) falls
	// back to the row engine below, unchanged.
	if vecEnabled.Load() {
		if res, handled, err := execVectorized(ctx, cat, stmt); handled {
			vecExecs.Add(1)
			return res, err
		}
	}
	fallbackExecs.Add(1)

	// Resolve FROM inputs (recursively executing derived tables).
	inputs := make([]*input, 0, len(stmt.From)+len(stmt.Joins))
	for _, ref := range stmt.From {
		in, err := resolveRef(ctx, cat, ref)
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, in)
	}

	// Conjunct pool: WHERE plus all JOIN ... ON predicates.
	var conjuncts []sqlparse.Expr
	if stmt.Where != nil {
		conjuncts = splitConjuncts(stmt.Where)
	}
	for _, j := range stmt.Joins {
		in, err := resolveRef(ctx, cat, j.Right)
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, in)
		conjuncts = append(conjuncts, splitConjuncts(j.On)...)
	}

	// Push single-table filters down to each input.
	used := make([]bool, len(conjuncts))
	for i, c := range conjuncts {
		if sqlparse.ContainsAggregate(c) {
			return nil, fmt.Errorf("engine: aggregate not allowed in WHERE/ON: %s", c)
		}
		for _, in := range inputs {
			if !exprResolvesIn(c, in.env) {
				continue
			}
			if err := in.filter(ctx, c); err != nil {
				return nil, err
			}
			used[i] = true
			break
		}
	}

	// Join left to right, preferring hash joins on available
	// equi-conjuncts (this is what keeps the Normalized/Key-normalized
	// rewriting experiments tractable).
	cur := inputs[0]
	for k := 1; k < len(inputs); k++ {
		next := inputs[k]
		var keys []joinKey
		for i, c := range conjuncts {
			if used[i] {
				continue
			}
			if jk, ok := equiKey(c, cur.env, next.env); ok {
				keys = append(keys, jk)
				used[i] = true
			}
		}
		joined, err := joinInputs(ctx, cur, next, keys)
		if err != nil {
			return nil, err
		}
		cur = joined
	}

	// Residual conjuncts (cross-table non-equi predicates).
	for i, c := range conjuncts {
		if used[i] {
			continue
		}
		if err := cur.filter(ctx, c); err != nil {
			return nil, err
		}
	}

	return project(ctx, stmt, cur)
}

// executeNoFrom evaluates a FROM-less SELECT (constant expressions).
func executeNoFrom(stmt *sqlparse.SelectStmt) (*Result, error) {
	ctx := &evalCtx{env: newRowEnv()}
	res := &Result{}
	row := make(Row, 0, len(stmt.Select))
	for _, item := range stmt.Select {
		if item.Star {
			return nil, fmt.Errorf("engine: SELECT * requires FROM")
		}
		v, err := ctx.eval(item.Expr)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
		res.Columns = append(res.Columns, outputName(item))
	}
	res.Rows = []Row{row}
	return res, nil
}

// input is one FROM-clause operand, materialized.
type input struct {
	env  *rowEnv
	rows []Row
}

func (in *input) filter(ctx context.Context, pred sqlparse.Expr) error {
	ec := &evalCtx{env: in.env}
	out := in.rows[:0]
	for i, row := range in.rows {
		if err := pollCtx(ctx, i); err != nil {
			return err
		}
		ec.row = row
		v, err := ec.eval(pred)
		if err != nil {
			return err
		}
		if v.Bool() {
			out = append(out, row)
		}
	}
	in.rows = out
	return nil
}

func resolveRef(ctx context.Context, cat *Catalog, ref sqlparse.TableRef) (*input, error) {
	qual := ref.Alias
	if ref.Subquery != nil {
		sub, err := ExecuteCtx(ctx, cat, ref.Subquery)
		if err != nil {
			return nil, err
		}
		env := newRowEnv()
		for _, c := range sub.Columns {
			env.add(qual, c)
		}
		return &input{env: env, rows: sub.Rows}, nil
	}
	rel, ok := cat.Lookup(ref.Name)
	if !ok {
		return nil, fmt.Errorf("engine: %w %q", ErrUnknownTable, ref.Name)
	}
	if qual == "" {
		qual = ref.Name
	}
	env := newRowEnv()
	for _, c := range rel.Schema.Cols {
		env.add(qual, c.Name)
	}
	return &input{env: env, rows: rel.Rows()}, nil
}

// splitConjuncts flattens a predicate over AND into its conjuncts.
func splitConjuncts(e sqlparse.Expr) []sqlparse.Expr {
	if b, ok := e.(*sqlparse.BinaryExpr); ok && b.Op == "and" {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []sqlparse.Expr{e}
}

// exprResolvesIn reports whether every column reference in e resolves in
// env (so the predicate can be pushed down to that input).
func exprResolvesIn(e sqlparse.Expr, env *rowEnv) bool {
	ok := true
	sqlparse.Walk(e, func(n sqlparse.Expr) bool {
		if c, ok2 := n.(*sqlparse.ColumnRef); ok2 {
			if _, err := env.resolve(c.Table, c.Name); err != nil {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// joinKey is one equi-join key pair: column index on each side.
type joinKey struct {
	left, right int
}

// equiKey recognizes conjuncts of the form leftCol = rightCol joining
// the two environments (in either order).
func equiKey(e sqlparse.Expr, left, right *rowEnv) (joinKey, bool) {
	b, ok := e.(*sqlparse.BinaryExpr)
	if !ok || b.Op != "=" {
		return joinKey{}, false
	}
	lc, lok := b.Left.(*sqlparse.ColumnRef)
	rc, rok := b.Right.(*sqlparse.ColumnRef)
	if !lok || !rok {
		return joinKey{}, false
	}
	if li, err := left.resolve(lc.Table, lc.Name); err == nil {
		if ri, err := right.resolve(rc.Table, rc.Name); err == nil {
			return joinKey{left: li, right: ri}, true
		}
	}
	if li, err := left.resolve(rc.Table, rc.Name); err == nil {
		if ri, err := right.resolve(lc.Table, lc.Name); err == nil {
			return joinKey{left: li, right: ri}, true
		}
	}
	return joinKey{}, false
}

// joinInputs joins two materialized inputs. With keys it builds a hash
// table on the right side; without keys it falls back to a nested-loop
// cross product.
func joinInputs(ctx context.Context, left, right *input, keys []joinKey) (*input, error) {
	env := newRowEnv()
	env.merge(left.env)
	env.merge(right.env)
	out := &input{env: env}

	if len(keys) == 0 {
		out.rows = make([]Row, 0, len(left.rows)*max(1, len(right.rows)))
		for li, lr := range left.rows {
			if err := pollCtx(ctx, li); err != nil {
				return nil, err
			}
			for _, rr := range right.rows {
				out.rows = append(out.rows, concatRows(lr, rr))
			}
		}
		return out, nil
	}

	ht := make(map[string][]Row, len(right.rows))
	var kb []byte
	for ri, rr := range right.rows {
		if err := pollCtx(ctx, ri); err != nil {
			return nil, err
		}
		kb = kb[:0]
		for _, k := range keys {
			kb = rr[k.right].AppendGroupKey(kb)
		}
		// map[string(bytes)] lookups don't allocate; the key string is
		// only materialized for newly seen keys.
		bucket, ok := ht[string(kb)]
		if !ok {
			ht[string(kb)] = []Row{rr}
			continue
		}
		ht[string(kb)] = append(bucket, rr)
	}
	for li, lr := range left.rows {
		if err := pollCtx(ctx, li); err != nil {
			return nil, err
		}
		kb = kb[:0]
		for _, k := range keys {
			kb = lr[k.left].AppendGroupKey(kb)
		}
		for _, rr := range ht[string(kb)] {
			out.rows = append(out.rows, concatRows(lr, rr))
		}
	}
	return out, nil
}

func concatRows(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// outputName picks the result column name for a select item.
func outputName(item sqlparse.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if c, ok := item.Expr.(*sqlparse.ColumnRef); ok {
		return c.Name
	}
	return strings.ToLower(item.Expr.String())
}

// projPlan is the resolved projection plan shared by the row and
// vectorized executors: star-expanded select items, alias-resolved
// GROUP BY / ORDER BY, and whether the query aggregates.
type projPlan struct {
	items   []sqlparse.SelectItem
	groupBy []sqlparse.Expr
	orderBy []sqlparse.OrderItem
	hasAgg  bool
}

// buildProjection expands SELECT *, resolves select-list aliases in
// GROUP BY / ORDER BY, and classifies the query as aggregating or not.
func buildProjection(stmt *sqlparse.SelectStmt, env *rowEnv) projPlan {
	// Expand SELECT *.
	items := make([]sqlparse.SelectItem, 0, len(stmt.Select))
	for _, item := range stmt.Select {
		if !item.Star {
			items = append(items, item)
			continue
		}
		for _, c := range env.cols {
			items = append(items, sqlparse.SelectItem{
				Expr: &sqlparse.ColumnRef{Name: c.name},
			})
		}
	}

	// Alias environment for GROUP BY / ORDER BY references.
	aliases := make(map[string]sqlparse.Expr)
	for _, item := range items {
		if item.Alias != "" {
			aliases[strings.ToLower(item.Alias)] = item.Expr
		}
	}
	resolveAlias := func(e sqlparse.Expr) sqlparse.Expr {
		if c, ok := e.(*sqlparse.ColumnRef); ok && c.Table == "" {
			// A select alias shadows nothing that exists in the input.
			if _, err := env.resolve("", c.Name); err != nil {
				if a, ok := aliases[strings.ToLower(c.Name)]; ok {
					return a
				}
			}
		}
		return e
	}

	groupBy := make([]sqlparse.Expr, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		groupBy[i] = resolveAlias(g)
	}
	orderBy := make([]sqlparse.OrderItem, len(stmt.OrderBy))
	for i, o := range stmt.OrderBy {
		orderBy[i] = sqlparse.OrderItem{Expr: resolveAlias(o.Expr), Desc: o.Desc}
	}

	hasAgg := len(groupBy) > 0 || stmt.Having != nil
	for _, item := range items {
		if sqlparse.ContainsAggregate(item.Expr) {
			hasAgg = true
		}
	}
	for _, o := range orderBy {
		if sqlparse.ContainsAggregate(o.Expr) {
			hasAgg = true
		}
	}
	return projPlan{items: items, groupBy: groupBy, orderBy: orderBy, hasAgg: hasAgg}
}

// project applies grouping/aggregation (if any), HAVING, DISTINCT,
// ORDER BY, and LIMIT/OFFSET to produce the final result.
func project(ctx context.Context, stmt *sqlparse.SelectStmt, in *input) (*Result, error) {
	p := buildProjection(stmt, in.env)

	var rows []sortableRow
	if p.hasAgg {
		grouped, err := aggregate(ctx, p.items, p.groupBy, stmt.Having, p.orderBy, in)
		if err != nil {
			return nil, err
		}
		rows = grouped
	} else {
		ec := &evalCtx{env: in.env}
		for ri, r := range in.rows {
			if err := pollCtx(ctx, ri); err != nil {
				return nil, err
			}
			ec.row = r
			out := make(Row, len(p.items))
			for i, item := range p.items {
				v, err := ec.eval(item.Expr)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			var keys []Value
			for _, o := range p.orderBy {
				v, err := ec.eval(o.Expr)
				if err != nil {
					return nil, err
				}
				keys = append(keys, v)
			}
			rows = append(rows, sortableRow{row: out, keys: keys})
		}
	}

	return assembleResult(stmt, p, rows), nil
}

// assembleResult applies DISTINCT, ORDER BY, and OFFSET/LIMIT to the
// produced rows and packages them with the output column names. Shared
// by the row and vectorized executors so the result-shaping semantics
// cannot drift between them.
func assembleResult(stmt *sqlparse.SelectStmt, p projPlan, rows []sortableRow) *Result {
	res := &Result{Columns: make([]string, len(p.items))}
	for i, item := range p.items {
		res.Columns[i] = outputName(item)
	}

	if stmt.Distinct {
		seen := make(map[string]bool, len(rows))
		dedup := rows[:0]
		var kb []byte
		for _, sr := range rows {
			kb = kb[:0]
			for _, v := range sr.row {
				kb = v.AppendGroupKey(kb)
			}
			if !seen[string(kb)] {
				seen[string(kb)] = true
				dedup = append(dedup, sr)
			}
		}
		rows = dedup
	}

	if len(p.orderBy) > 0 {
		sort.SliceStable(rows, func(a, b int) bool {
			for i, o := range p.orderBy {
				c := rows[a].keys[i].Compare(rows[b].keys[i])
				if c == 0 {
					continue
				}
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	// OFFSET / LIMIT.
	start := int(stmt.Offset)
	if start > len(rows) {
		start = len(rows)
	}
	end := len(rows)
	if stmt.Limit >= 0 && start+int(stmt.Limit) < end {
		end = start + int(stmt.Limit)
	}
	for _, sr := range rows[start:end] {
		res.Rows = append(res.Rows, sr.row)
	}
	if res.Rows == nil {
		res.Rows = []Row{}
	}
	return res
}
