package engine

import (
	"math"
	"strings"
	"testing"
)

// fixture builds a small catalog with a sales table, a sample table with
// scale factors, and an aux table, mirroring the shapes used by the
// Section 5 rewrites.
func fixture(t *testing.T) *Catalog {
	t.Helper()
	cat := NewCatalog()

	sales := NewRelation("sales", MustSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "region", Kind: KindString},
		Column{Name: "product", Kind: KindString},
		Column{Name: "qty", Kind: KindInt},
		Column{Name: "price", Kind: KindFloat},
		Column{Name: "day", Kind: KindDate},
	))
	rows := []struct {
		id           int64
		region, prod string
		qty          int64
		price        float64
		day          string
	}{
		{1, "east", "pen", 10, 1.5, "1998-01-01"},
		{2, "east", "pen", 20, 1.5, "1998-02-01"},
		{3, "east", "ink", 5, 8.0, "1998-03-01"},
		{4, "west", "pen", 40, 1.4, "1998-04-01"},
		{5, "west", "ink", 15, 8.5, "1998-05-01"},
		{6, "west", "ink", 25, 8.5, "1998-06-01"},
		{7, "north", "pen", 1, 1.6, "1998-07-01"},
	}
	for _, r := range rows {
		if err := sales.Insert(Row{NewInt(r.id), NewString(r.region), NewString(r.prod), NewInt(r.qty), NewFloat(r.price), MustParseDate(r.day)}); err != nil {
			t.Fatal(err)
		}
	}
	cat.Register(sales)

	samp := NewRelation("samprel", MustSchema(
		Column{Name: "region", Kind: KindString},
		Column{Name: "q", Kind: KindInt},
		Column{Name: "sf", Kind: KindFloat},
	))
	for _, r := range []struct {
		region string
		q      int64
		sf     float64
	}{
		{"east", 10, 100}, {"east", 20, 100},
		{"west", 40, 50}, {"west", 15, 50},
	} {
		samp.Insert(Row{NewString(r.region), NewInt(r.q), NewFloat(r.sf)})
	}
	cat.Register(samp)

	aux := NewRelation("auxrel", MustSchema(
		Column{Name: "region", Kind: KindString},
		Column{Name: "sf", Kind: KindFloat},
	))
	aux.Insert(Row{NewString("east"), NewFloat(100)})
	aux.Insert(Row{NewString("west"), NewFloat(50)})
	cat.Register(aux)

	return cat
}

func mustQuery(t *testing.T, cat *Catalog, q string) *Result {
	t.Helper()
	res, err := ExecuteSQL(cat, q)
	if err != nil {
		t.Fatalf("query %q failed: %v", q, err)
	}
	return res
}

func floatAt(t *testing.T, res *Result, row, col int) float64 {
	t.Helper()
	f, ok := res.Rows[row][col].AsFloat()
	if !ok {
		t.Fatalf("cell (%d,%d) = %v not numeric", row, col, res.Rows[row][col])
	}
	return f
}

func TestSelectAll(t *testing.T) {
	res := mustQuery(t, fixture(t), "select * from sales")
	if len(res.Rows) != 7 || len(res.Columns) != 6 {
		t.Fatalf("got %dx%d", len(res.Rows), len(res.Columns))
	}
}

func TestWhereFilters(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select id from sales where region = 'west' and qty > 14")
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%d, want 3", len(res.Rows))
	}
	res = mustQuery(t, cat, "select id from sales where qty between 10 and 20")
	if len(res.Rows) != 3 {
		t.Fatalf("between rows=%d, want 3", len(res.Rows))
	}
	res = mustQuery(t, cat, "select id from sales where region in ('north', 'nowhere')")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
		t.Fatalf("in-list rows=%v", res.Rows)
	}
	res = mustQuery(t, cat, "select id from sales where not region = 'east' and product like 'i%'")
	if len(res.Rows) != 2 {
		t.Fatalf("like rows=%d, want 2", len(res.Rows))
	}
}

func TestDateComparisonCoercion(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select count(*) from sales where day <= '1998-03-15'")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("date-string coercion count=%v", res.Rows[0][0])
	}
	res = mustQuery(t, cat, "select count(*) from sales where day <= date '1998-03-15'")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("date-literal count=%v", res.Rows[0][0])
	}
}

func TestGroupByAggregates(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, `select region, sum(qty), count(*), avg(price), min(qty), max(qty)
		from sales group by region order by region`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups=%d", len(res.Rows))
	}
	// east: qty 10+20+5=35, count 3, price avg (1.5+1.5+8)/3
	if res.Rows[0][0].S != "east" || res.Rows[0][1].I != 35 || res.Rows[0][2].I != 3 {
		t.Fatalf("east row %v", res.Rows[0])
	}
	if got := floatAt(t, res, 0, 3); math.Abs(got-11.0/3) > 1e-9 {
		t.Errorf("east avg price = %v", got)
	}
	if res.Rows[0][4].I != 5 || res.Rows[0][5].I != 20 {
		t.Errorf("east min/max = %v/%v", res.Rows[0][4], res.Rows[0][5])
	}
	if res.Rows[1][0].S != "north" || res.Rows[2][0].S != "west" {
		t.Errorf("order by region broken: %v", res.Rows)
	}
}

func TestGlobalAggregateNoGroupBy(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select sum(qty), count(*) from sales")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 116 || res.Rows[0][1].I != 7 {
		t.Fatalf("global agg %v", res.Rows)
	}
	// Aggregate over empty input still yields one row.
	res = mustQuery(t, cat, "select count(*), sum(qty) from sales where qty > 10000")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 || !res.Rows[0][1].IsNull() {
		t.Fatalf("empty agg %v", res.Rows)
	}
}

func TestCountDistinctAndVariance(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select count(distinct region), count(distinct product) from sales")
	if res.Rows[0][0].I != 3 || res.Rows[0][1].I != 2 {
		t.Fatalf("distinct counts %v", res.Rows[0])
	}
	res = mustQuery(t, cat, "select variance(qty), stddev(qty) from sales where region = 'east'")
	// east qtys: 10, 20, 5 -> mean 35/3, sample var = 175/3
	wantVar := 175.0 / 3
	if got := floatAt(t, res, 0, 0); math.Abs(got-wantVar) > 1e-9 {
		t.Errorf("variance=%v want %v", got, wantVar)
	}
	if got := floatAt(t, res, 0, 1); math.Abs(got-math.Sqrt(wantVar)) > 1e-9 {
		t.Errorf("stddev=%v", got)
	}
}

func TestHaving(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select region, sum(qty) from sales group by region having sum(qty) > 30 order by region")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "east" || res.Rows[1][0].S != "west" {
		t.Fatalf("having rows %v", res.Rows)
	}
}

func TestArithmeticInSelect(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select 100*sum(qty), sum(qty*2)+1, sum(qty)/2 from sales where region='north'")
	if res.Rows[0][0].I != 100 || res.Rows[0][1].I != 3 {
		t.Fatalf("scaled sums %v", res.Rows[0])
	}
	if got := floatAt(t, res, 0, 2); got != 0.5 {
		t.Errorf("int division must be exact: %v", got)
	}
}

func TestIntegratedRewriteShape(t *testing.T) {
	// Figure 8: per-tuple scale-factor multiply.
	cat := fixture(t)
	res := mustQuery(t, cat, "select region, sum(q*sf) from samprel group by region order by region")
	if len(res.Rows) != 2 {
		t.Fatalf("rows %v", res.Rows)
	}
	if got := floatAt(t, res, 0, 1); got != 3000 { // (10+20)*100
		t.Errorf("east scaled sum = %v", got)
	}
	if got := floatAt(t, res, 1, 1); got != 2750 { // (40+15)*50
		t.Errorf("west scaled sum = %v", got)
	}
}

func TestNestedIntegratedRewriteShape(t *testing.T) {
	// Figure 11: aggregate inside a derived table, then scale per group.
	cat := fixture(t)
	res := mustQuery(t, cat, `select region, sum(sq*sf)
		from (select region, sf, sum(q) as sq from samprel group by region, sf)
		group by region order by region`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows %v", res.Rows)
	}
	if got := floatAt(t, res, 0, 1); got != 3000 {
		t.Errorf("east = %v", got)
	}
	if got := floatAt(t, res, 1, 1); got != 2750 {
		t.Errorf("west = %v", got)
	}
}

func TestNormalizedRewriteShape(t *testing.T) {
	// Figure 9: join sample with aux table carrying the scale factors.
	cat := fixture(t)
	res := mustQuery(t, cat, `select s.region, sum(s.q * a.sf)
		from samprel s, auxrel a
		where s.region = a.region
		group by s.region order by s.region`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows %v", res.Rows)
	}
	if got := floatAt(t, res, 0, 1); got != 3000 {
		t.Errorf("east = %v", got)
	}
	if got := floatAt(t, res, 1, 1); got != 2750 {
		t.Errorf("west = %v", got)
	}
}

func TestExplicitJoin(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, `select s.region, sum(s.q * a.sf)
		from samprel s join auxrel a on s.region = a.region
		group by s.region order by s.region`)
	if len(res.Rows) != 2 || floatAt(t, res, 0, 1) != 3000 {
		t.Fatalf("explicit join rows %v", res.Rows)
	}
}

func TestCrossJoinFallback(t *testing.T) {
	cat := fixture(t)
	// Non-equi join condition forces nested loop + residual filter.
	res := mustQuery(t, cat, `select count(*) from samprel s, auxrel a where s.sf > a.sf`)
	// samprel sf values: 100,100,50,50; auxrel: 100,50. Pairs with s.sf > a.sf:
	// (100,50) x2 = 2.
	if res.Rows[0][0].I != 2 {
		t.Fatalf("cross join count %v", res.Rows[0][0])
	}
}

func TestAvgViaScaledSums(t *testing.T) {
	// The AVG rewrite: sum(Q*SF)/sum(SF).
	cat := fixture(t)
	res := mustQuery(t, cat, "select sum(q*sf)/sum(sf) from samprel where region = 'east'")
	if got := floatAt(t, res, 0, 0); math.Abs(got-15) > 1e-9 {
		t.Errorf("weighted avg = %v, want 15", got)
	}
}

func TestSumErrorAggregate(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select sum_error(q, sf) from samprel where region = 'east'")
	// east stratum: values 10,20 sf=100: s^2 = 50, var = 100^2*2*(1-0.01)*50.
	want := zScore90 * math.Sqrt(100*100*2*0.99*50)
	if got := floatAt(t, res, 0, 0); math.Abs(got-want) > 1e-6 {
		t.Errorf("sum_error = %v, want %v", got, want)
	}
	res = mustQuery(t, cat, "select count_error(sf) from samprel")
	want = zScore90 * math.Sqrt(2*100*99+2*50*49)
	if got := floatAt(t, res, 0, 0); math.Abs(got-want) > 1e-6 {
		t.Errorf("count_error = %v, want %v", got, want)
	}
	res = mustQuery(t, cat, "select avg_error(q, sf) from samprel where region='east'")
	if got := floatAt(t, res, 0, 0); got <= 0 {
		t.Errorf("avg_error = %v, want positive", got)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select id from sales order by qty desc limit 2")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 4 || res.Rows[1][0].I != 6 {
		t.Fatalf("top-2 %v", res.Rows)
	}
	res = mustQuery(t, cat, "select id from sales order by qty desc limit 2 offset 1")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 6 {
		t.Fatalf("offset rows %v", res.Rows)
	}
	res = mustQuery(t, cat, "select id from sales order by id limit 100 offset 100")
	if len(res.Rows) != 0 {
		t.Fatalf("offset past end rows %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select distinct region from sales order by region")
	if len(res.Rows) != 3 {
		t.Fatalf("distinct rows %v", res.Rows)
	}
}

func TestAliasInGroupByAndOrderBy(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select region as r, sum(qty) as total from sales group by r order by total desc")
	if len(res.Rows) != 3 || res.Rows[0][0].S != "west" {
		t.Fatalf("alias group-by rows %v", res.Rows)
	}
	if res.Columns[0] != "r" || res.Columns[1] != "total" {
		t.Errorf("columns %v", res.Columns)
	}
}

func TestCaseExpression(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, `select sum(case when region = 'east' then qty else 0 end) from sales`)
	if res.Rows[0][0].I != 35 {
		t.Fatalf("case sum %v", res.Rows[0][0])
	}
}

func TestScalarFunctions(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select abs(-3), sqrt(16.0), round(2.567, 2), upper(region), length(product), year(day) from sales where id = 1")
	row := res.Rows[0]
	if row[0].I != 3 {
		t.Errorf("abs %v", row[0])
	}
	if row[1].F != 4 {
		t.Errorf("sqrt %v", row[1])
	}
	if math.Abs(row[2].F-2.57) > 1e-9 {
		t.Errorf("round %v", row[2])
	}
	if row[3].S != "EAST" {
		t.Errorf("upper %v", row[3])
	}
	if row[4].I != 3 {
		t.Errorf("length %v", row[4])
	}
	if row[5].I != 1998 {
		t.Errorf("year %v", row[5])
	}
}

func TestCoalesceNullIf(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select coalesce(null, 5), nullif(3, 3), nullif(3, 4) from sales where id = 1")
	row := res.Rows[0]
	if row[0].I != 5 || !row[1].IsNull() || row[2].I != 3 {
		t.Fatalf("coalesce/nullif %v", row)
	}
}

func TestSelectConstantsNoFrom(t *testing.T) {
	cat := NewCatalog()
	res := mustQuery(t, cat, "select 1+2 as three, 'x'")
	if res.Rows[0][0].I != 3 || res.Rows[0][1].S != "x" {
		t.Fatalf("constants %v", res.Rows[0])
	}
	if res.Columns[0] != "three" {
		t.Errorf("columns %v", res.Columns)
	}
}

func TestErrorCases(t *testing.T) {
	cat := fixture(t)
	bad := []string{
		"select * from nosuchtable",
		"select nosuchcol from sales",
		"select s.qty from sales",                   // wrong qualifier
		"select region from sales, samprel",         // ambiguous region
		"select sum(region) from sales",             // sum over string
		"select qty from sales where sum(qty) > 1",  // aggregate in WHERE
		"select nosuch(qty) from sales",             // unknown function
		"select sum(qty, price) from sales",         // arity
		"select sum_error(qty) from sales",          // arity
		"select id from sales where region + 1 = 2", // string arithmetic
		"select * from (select region from sales) s, sales where s.region = sales.region and nosuch = 1",
	}
	for _, q := range bad {
		if _, err := ExecuteSQL(cat, q); err == nil {
			t.Errorf("query %q succeeded, want error", q)
		}
	}
}

func TestAmbiguousQualifiedOK(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select sales.region from sales, auxrel where sales.region = auxrel.region order by sales.region")
	// east sales rows 1-3 match the east aux row, west rows 4-6 match
	// west; the north row has no partner.
	if len(res.Rows) != 6 {
		t.Fatalf("qualified join rows = %d, want 6", len(res.Rows))
	}
}

func TestResultString(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, "select region, sum(qty) as total from sales group by region order by region")
	s := res.String()
	if !strings.Contains(s, "region") || !strings.Contains(s, "total") || !strings.Contains(s, "east") {
		t.Errorf("rendered table missing content:\n%s", s)
	}
}

func TestSubqueryColumnVisibility(t *testing.T) {
	cat := fixture(t)
	res := mustQuery(t, cat, `select t.r, t.total from (select region as r, sum(qty) as total from sales group by region) t where t.total > 30 order by t.r`)
	if len(res.Rows) != 2 || res.Rows[0][0].S != "east" {
		t.Fatalf("subquery rows %v", res.Rows)
	}
}

func TestIsNullPredicate(t *testing.T) {
	cat := NewCatalog()
	rel := NewRelation("t", MustSchema(Column{Name: "v", Kind: KindInt}))
	rel.Insert(Row{NewInt(1)})
	rel.Insert(Row{Null})
	cat.Register(rel)
	res := mustQuery(t, cat, "select count(*) from t where v is null")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("is null count %v", res.Rows[0][0])
	}
	res = mustQuery(t, cat, "select count(v) from t")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("count skips null: %v", res.Rows[0][0])
	}
	res = mustQuery(t, cat, "select sum(v), avg(v) from t where v is not null")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("sum %v", res.Rows[0][0])
	}
}
