package congress

import (
	"math"
	"strings"
	"testing"
)

// buildSalesWarehouse creates a warehouse with a skewed sales table:
// region "east" dominates, "tiny" has very few rows.
func buildSalesWarehouse(t testing.TB) (*Warehouse, *Table) {
	t.Helper()
	w := Open()
	tbl, err := w.CreateTable("sales",
		Col("region", String),
		Col("product", String),
		Col("amount", Float),
	)
	if err != nil {
		t.Fatal(err)
	}
	insert := func(region, product string, n int, base float64) {
		for i := 0; i < n; i++ {
			if err := tbl.Insert(Str(region), Str(product), F(base+float64(i%10))); err != nil {
				t.Fatal(err)
			}
		}
	}
	insert("east", "pen", 5000, 10)
	insert("east", "ink", 3000, 50)
	insert("west", "pen", 1500, 12)
	insert("west", "ink", 480, 55)
	insert("tiny", "pen", 20, 100)
	return w, tbl
}

func TestWarehouseQuickstartFlow(t *testing.T) {
	w, tbl := buildSalesWarehouse(t)
	if tbl.NumRows() != 10000 {
		t.Fatalf("rows %d", tbl.NumRows())
	}
	if tbl.Name() != "sales" {
		t.Fatalf("name %q", tbl.Name())
	}
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 1000, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}

	exact, err := w.Query(`select region, sum(amount) from sales group by region order by region`)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := w.Approx(`select region, sum(amount) from sales group by region order by region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(approx.Rows) != len(exact.Rows) {
		t.Fatalf("approx groups %d, exact %d", len(approx.Rows), len(exact.Rows))
	}
	for i := range exact.Rows {
		ev, _ := exact.Rows[i][1].AsFloat()
		av, _ := approx.Rows[i][1].AsFloat()
		if math.Abs(ev-av) > 0.25*ev {
			t.Errorf("group %v: approx %.0f vs exact %.0f", exact.Rows[i][0], av, ev)
		}
	}
}

func TestApproxWithAllStrategies(t *testing.T) {
	w, _ := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 2000, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	q := `select region, product, count(*) from sales group by region, product order by region, product`
	var first *Result
	for _, strat := range []RewriteStrategy{Integrated, NestedIntegrated, Normalized, KeyNormalized} {
		res, err := w.ApproxWith(q, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if first == nil {
			first = res
			continue
		}
		if len(res.Rows) != len(first.Rows) {
			t.Fatalf("%v rows %d vs %d", strat, len(res.Rows), len(first.Rows))
		}
		for i := range res.Rows {
			a, _ := res.Rows[i][2].AsFloat()
			b, _ := first.Rows[i][2].AsFloat()
			if math.Abs(a-b) > 1e-6 {
				t.Errorf("%v row %d: %v vs %v", strat, i, a, b)
			}
		}
	}
}

func TestTinyGroupSurvives(t *testing.T) {
	// The motivating claim: with Congress, the 20-row group appears in
	// a 5% sample; with House it usually drowns.
	w, _ := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 500,
		Strategy: Congress, Seed: 11,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := w.Approx(`select region, count(*) from sales group by region order by region`)
	if err != nil {
		t.Fatal(err)
	}
	foundTiny := false
	for _, row := range res.Rows {
		if row[0].S == "tiny" {
			foundTiny = true
			cnt, _ := row[1].AsFloat()
			if math.Abs(cnt-20) > 10 {
				t.Errorf("tiny count estimate %v, want ~20", cnt)
			}
		}
	}
	if !foundTiny {
		t.Error("tiny group missing from Congress answer")
	}
}

func TestExplain(t *testing.T) {
	w, _ := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 100,
	}); err != nil {
		t.Fatal(err)
	}
	s, err := w.Explain(`select region, sum(amount) from sales group by region`, Integrated)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "cs_sales") || !strings.Contains(strings.ToLower(s), "sf") {
		t.Errorf("explain output %q", s)
	}
}

func TestEstimateDirect(t *testing.T) {
	w, _ := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 1500, Seed: 5,
	}); err != nil {
		t.Fatal(err)
	}
	ests, err := w.Estimate("sales", []string{"region"}, Sum, "amount", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("estimates %v", ests)
	}
	for _, e := range ests {
		if e.Value <= 0 || e.Bound < 0 {
			t.Errorf("estimate %+v", e)
		}
	}
	// Error paths.
	if _, err := w.Estimate("nope", []string{"region"}, Sum, "amount", 0); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := w.Estimate("sales", []string{"ghost"}, Sum, "amount", 0); err == nil {
		t.Error("unknown grouping column accepted")
	}
	if _, err := w.Estimate("sales", []string{"region"}, Sum, "ghost", 0); err == nil {
		t.Error("unknown aggregate column accepted")
	}
}

// TestEstimateMissingBaseRelation: a synopsis whose backing relation
// has vanished from the catalog must yield an error, not a nil-pointer
// panic (regression: Estimate ignored the catalog-lookup result).
func TestEstimateMissingBaseRelation(t *testing.T) {
	w, _ := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 500, Seed: 2,
	}); err != nil {
		t.Fatal(err)
	}
	w.cat.Drop("sales")
	if _, err := w.Estimate("sales", []string{"region"}, Sum, "amount", 0); err == nil {
		t.Error("Estimate over a dropped base relation returned no error")
	}
}

// TestEstimateKeyNoSeparatorCollision: groupings whose string values
// contain the old "/" separator must not collide (regression: joinParts
// rendered ("a/b","c") and ("a","b/c") to the same key).
func TestEstimateKeyNoSeparatorCollision(t *testing.T) {
	w := Open()
	tbl, err := w.CreateTable("t",
		Col("g1", String), Col("g2", String), Col("v", Float))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tbl.Insert(Str("a/b"), Str("c"), F(1)); err != nil {
			t.Fatal(err)
		}
		if err := tbl.Insert(Str("a"), Str("b/c"), F(10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "t", GroupBy: []string{"g1", "g2"}, Space: 100, Seed: 4,
	}); err != nil {
		t.Fatal(err)
	}
	ests, err := w.Estimate("t", []string{"g1", "g2"}, Sum, "v", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 2 {
		t.Fatalf("estimates for ambiguous keys merged: got %d groups, want 2: %+v", len(ests), ests)
	}
	for _, e := range ests {
		parts := SplitEstimateKey(e.Key)
		if len(parts) != 2 {
			t.Errorf("key %q splits into %v, want 2 parts", e.Key, parts)
		}
	}
}

// TestBuildSynopsisParallelWorkers: the facade accepts BuildWorkers and
// a parallel build answers queries just like a serial one.
func TestBuildSynopsisParallelWorkers(t *testing.T) {
	w, _ := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 1000,
		Seed: 3, BuildWorkers: 4,
	}); err != nil {
		t.Fatal(err)
	}
	exact, err := w.Query(`select region, sum(amount) from sales group by region order by region`)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := w.Approx(`select region, sum(amount) from sales group by region order by region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(approx.Rows) != len(exact.Rows) {
		t.Fatalf("approx groups %d, exact %d", len(approx.Rows), len(exact.Rows))
	}
	for i := range exact.Rows {
		ev, _ := exact.Rows[i][1].AsFloat()
		av, _ := approx.Rows[i][1].AsFloat()
		if math.Abs(ev-av) > 0.25*ev {
			t.Errorf("group %v: approx %.0f vs exact %.0f", exact.Rows[i][0], av, ev)
		}
	}
}

func TestMetricsSnapshot(t *testing.T) {
	w, tbl := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 500, Seed: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Str("east"), Str("pen"), F(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Approx(`select region, count(*) from sales group by region`); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Estimate("sales", []string{"region"}, Count, "amount", 0); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.Build.Count != 1 || m.Build.Total <= 0 {
		t.Errorf("build stats %+v", m.Build)
	}
	if m.RowsScanned < 10000 {
		t.Errorf("rows scanned %d, want >= table size", m.RowsScanned)
	}
	if m.StrataTouched != 5 {
		t.Errorf("strata touched %d, want 5", m.StrataTouched)
	}
	if m.Answer.Count != 1 || m.Estimate.Count != 1 {
		t.Errorf("op counts %+v", m)
	}
	if m.MaintainerInserts != 1 || m.MaintainerQueueDepth != 1 {
		t.Errorf("maintainer counters %+v", m)
	}
	if err := w.RefreshSynopsis("sales"); err != nil {
		t.Fatal(err)
	}
	m = w.Metrics()
	if m.Refresh.Count != 1 || m.MaintainerQueueDepth != 0 {
		t.Errorf("post-refresh counters refresh=%+v depth=%d", m.Refresh, m.MaintainerQueueDepth)
	}
}

func TestInsertFeedsMaintainer(t *testing.T) {
	w, tbl := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 500, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	// The pre-existing handle also works: synopsis resolution happens
	// per insert.
	tbl, err := w.Table("sales")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := tbl.Insert(Str("north"), Str("pen"), F(7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.RefreshSynopsis("sales"); err != nil {
		t.Fatal(err)
	}
	res, err := w.Approx(`select region, count(*) from sales group by region`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[0].S == "north" {
			cnt, _ := row[1].AsFloat()
			if math.Abs(cnt-3000) > 600 {
				t.Errorf("north count %v, want ~3000", cnt)
			}
			return
		}
	}
	t.Error("maintained group 'north' missing after refresh")
}

func TestBuildJoinSynopsis(t *testing.T) {
	w := Open()
	dim, err := w.CreateTable("regions",
		Col("r_id", Int), Col("zone", String))
	if err != nil {
		t.Fatal(err)
	}
	dim.Insert(I(1), Str("north"))
	dim.Insert(I(2), Str("south"))
	fact, err := w.CreateTable("events",
		Col("e_id", Int), Col("r", Int), Col("v", Float))
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(3)
	for i := 0; i < 8000; i++ {
		r := int64(1)
		if rng.Intn(10) == 0 {
			r = 2 // "south" is the rare zone
		}
		fact.Insert(I(int64(i)), I(r), F(rng.Float64()*10))
	}
	if err := w.BuildJoinSynopsis(
		JoinSpec{Name: "events_wide", Fact: "events",
			Dims: []DimJoin{{Table: "regions", FactKey: "r", DimKey: "r_id"}}},
		SynopsisSpec{GroupBy: []string{"zone"}, Space: 400, Seed: 6},
	); err != nil {
		t.Fatal(err)
	}
	res, err := w.Approx(`select zone, count(*) from events_wide group by zone order by zone`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("zones %v", res.Rows)
	}
	// The rare zone's count must be estimated within a sane band.
	for _, row := range res.Rows {
		if row[0].S == "south" {
			c, _ := row[1].AsFloat()
			if math.Abs(c-800) > 250 {
				t.Errorf("south count %v, want ~800", c)
			}
		}
	}
	// Bad specs error.
	if err := w.BuildJoinSynopsis(JoinSpec{Name: "x", Fact: "ghost"}, SynopsisSpec{GroupBy: []string{"zone"}, Space: 10}); err == nil {
		t.Error("bad join spec accepted")
	}
}

func TestAllocationTable(t *testing.T) {
	w, _ := buildSalesWarehouse(t)
	if _, err := w.AllocationTable("sales"); err == nil {
		t.Error("allocation table before synopsis accepted")
	}
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 500, Seed: 2,
	}); err != nil {
		t.Fatal(err)
	}
	rows, err := w.AllocationTable("sales")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("allocation rows %d, want 5 groups", len(rows))
	}
	var totalActual int
	var totalPop int64
	for i, r := range rows {
		totalActual += r.Actual
		totalPop += r.Population
		if r.Target <= 0 || r.PreScale < r.Target-1e-9 {
			t.Errorf("row %d: pre-scale %v, target %v", i, r.PreScale, r.Target)
		}
		if i > 0 && rows[i-1].Target < r.Target {
			t.Error("rows not sorted by descending target")
		}
		if len(r.Group) != 2 {
			t.Errorf("group rendering %v", r.Group)
		}
	}
	if totalActual != 500 {
		t.Errorf("actual total %d, want 500", totalActual)
	}
	if totalPop != 10000 {
		t.Errorf("population total %d", totalPop)
	}
}

func TestTargetGroupingsViaFacade(t *testing.T) {
	w, _ := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 400,
		TargetGroupings: [][]string{{"region"}, {}}, // region group-bys and the grand total
		Seed:            8,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := w.Approx(`select region, sum(amount) from sales group by region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("regions %v", res.Rows)
	}
}

func TestTableErrors(t *testing.T) {
	w := Open()
	if _, err := w.Table("ghost"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := w.CreateTable("bad", Col("x", Int), Col("x", Int)); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := w.BuildSynopsis(SynopsisSpec{Table: "ghost", GroupBy: []string{"x"}, Space: 10}); err == nil {
		t.Error("synopsis on unknown table accepted")
	}
	if err := w.RefreshSynopsis("ghost"); err == nil {
		t.Error("refresh on unknown synopsis accepted")
	}
	if _, err := w.Approx("select 1"); err == nil {
		t.Error("approx without FROM accepted")
	}
}
