package congress

// This file is the paper's benchmark harness: one benchmark per table
// and figure of the evaluation (Section 7), plus the Figure 5
// allocation example and Figure 3/4 demonstration. Accuracy benchmarks
// report the figure's metric (mean percent error) via ReportMetric in
// addition to wall-clock time; timing benchmarks reproduce Table 3 and
// Figure 18 directly as Go benchmark time.
//
// The benchmarks run on a scaled-down table (default 60K rows, override
// with -congress.rows) so `go test -bench=.` completes in minutes; the
// cmd/experiments binary runs the same code at paper scale.

import (
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/approxdb/congress/internal/aqua"
	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/datacube"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/metrics"
	"github.com/approxdb/congress/internal/rewrite"
	"github.com/approxdb/congress/internal/sample"
	"github.com/approxdb/congress/internal/sqlparse"
	"github.com/approxdb/congress/internal/tpcd"
	"github.com/approxdb/congress/internal/workload"
)

var benchRows = flag.Int("congress.rows", 60_000, "table size for paper benchmarks")

// sampleStratumB abbreviates the stratum type in benchmarks.
type sampleStratumB = sample.Stratum[engine.Row]

// benchParams returns the scaled Table 1 defaults used by the accuracy
// benchmarks.
func benchParams() workload.Params {
	return workload.Params{
		TableSize:  *benchRows,
		SamplePct:  7,
		NumGroups:  1000,
		Skew:       1.5,
		Qg0Queries: 20,
		Seed:       1,
	}
}

// The testbed is expensive (data generation dominates); build it once
// per parameter set and share across benchmarks.
var (
	tbOnce sync.Once
	tbMain *workload.Testbed
	tbErr  error
)

func mainTestbed(b *testing.B) *workload.Testbed {
	b.Helper()
	tbOnce.Do(func() {
		tbMain, tbErr = workload.NewTestbed(benchParams(), core.Strategies)
	})
	if tbErr != nil {
		b.Fatal(tbErr)
	}
	return tbMain
}

// BenchmarkFigure5Allocation benchmarks the Congress allocation
// computation itself on the paper's Figure 5 distribution (10K tuples,
// 4 groups, 2 grouping attributes).
func BenchmarkFigure5Allocation(b *testing.B) {
	cube := datacube.MustNew([]string{"A", "B"})
	add := func(a, bb string, n int) {
		id := datacube.GroupID{a, bb}
		for i := 0; i < n; i++ {
			cube.Add(id)
		}
	}
	add("a1", "b1", 3000)
	add("a1", "b2", 3000)
	add("a1", "b3", 1500)
	add("a2", "b3", 2500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Allocate(core.Congress, cube, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3TPCDQ1 reproduces the Figure 3/4 demonstration: the
// simplified TPC-D Query 1 answered from a 1% uniform sample with error
// bounds. The benchmark measures approximate-answer latency.
func BenchmarkFigure3TPCDQ1(b *testing.B) {
	rel := tpcd.MustGenerate(tpcd.Params{
		TableSize: *benchRows, NumGroups: 8, GroupSkew: 1.5, Seed: 1,
	})
	cat := engine.NewCatalog()
	cat.Register(rel)
	a := aqua.New(cat)
	if _, err := a.CreateSynopsis(aqua.Config{
		Table: "lineitem", GroupCols: tpcd.GroupingAttrs,
		Strategy: core.House, Space: *benchRows / 100,
		WithErrorColumns: true, Seed: 1,
	}); err != nil {
		b.Fatal(err)
	}
	q := `select l_returnflag, l_linestatus, sum(l_quantity)
		from lineitem where l_shipdate <= '1998-09-01'
		group by l_returnflag, l_linestatus`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Answer(q); err != nil {
			b.Fatal(err)
		}
	}
}

// accuracyBench runs one Figure 14/15/16 cell: answer the query from
// strategy's synopsis each iteration and report the figure's error
// metric.
func accuracyBench(b *testing.B, strat core.Strategy, query string, groupCols int) {
	tb := mainTestbed(b)
	a := tb.ByStrategy[strat]
	exact, err := a.Exact(query)
	if err != nil {
		b.Fatal(err)
	}
	var lastErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		approx, err := a.Answer(query)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		ge, err := metrics.CompareAnswers(exact, approx, groupCols, groupCols)
		if err != nil {
			b.Fatal(err)
		}
		lastErr = ge.L1()
		b.StartTimer()
	}
	b.ReportMetric(lastErr, "pct-err")
}

// BenchmarkFigure14_Qg0Error regenerates Figure 14: error on the
// no-group-by query set, per allocation strategy.
func BenchmarkFigure14_Qg0Error(b *testing.B) {
	tb := mainTestbed(b)
	for _, strat := range core.Strategies {
		b.Run(strat.String(), func(b *testing.B) {
			a := tb.ByStrategy[strat]
			rng := rand.New(rand.NewSource(99))
			queries := workload.Qg0Set(tb.Params, rng)
			exacts := make([]float64, len(queries))
			for i, q := range queries {
				res, err := a.Exact(q)
				if err != nil {
					b.Fatal(err)
				}
				exacts[i], _ = res.Rows[0][0].AsFloat()
			}
			var meanErr float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				approx, err := a.Answer(q)
				if err != nil {
					b.Fatal(err)
				}
				av, _ := approx.Rows[0][0].AsFloat()
				meanErr += metrics.RelativeErrorPct(exacts[i%len(queries)], av)
			}
			b.ReportMetric(meanErr/float64(b.N), "pct-err")
		})
	}
}

// BenchmarkFigure15_Qg3Error regenerates Figure 15: error on the finest
// grouping, per allocation strategy.
func BenchmarkFigure15_Qg3Error(b *testing.B) {
	for _, strat := range core.Strategies {
		b.Run(strat.String(), func(b *testing.B) {
			accuracyBench(b, strat, workload.Qg3, 3)
		})
	}
}

// BenchmarkFigure16_Qg2Error regenerates Figure 16: error on the
// two-column grouping, per allocation strategy.
func BenchmarkFigure16_Qg2Error(b *testing.B) {
	for _, strat := range core.Strategies {
		b.Run(strat.String(), func(b *testing.B) {
			accuracyBench(b, strat, workload.Qg2, 2)
		})
	}
}

// BenchmarkFigure17_SampleSize regenerates Figure 17: Congress Q_g2
// error as the sample grows (z = 0.86).
func BenchmarkFigure17_SampleSize(b *testing.B) {
	for _, sp := range []float64{1, 5, 10, 20, 50} {
		b.Run(fmt.Sprintf("SP=%.0f%%", sp), func(b *testing.B) {
			p := benchParams()
			p.Skew = 0.86
			p.SamplePct = sp
			tb, err := workload.NewTestbed(p, []core.Strategy{core.Congress})
			if err != nil {
				b.Fatal(err)
			}
			a := tb.ByStrategy[core.Congress]
			exact, err := a.Exact(workload.Qg2)
			if err != nil {
				b.Fatal(err)
			}
			var lastErr float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				approx, err := a.Answer(workload.Qg2)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				ge, err := metrics.CompareAnswers(exact, approx, 2, 2)
				if err != nil {
					b.Fatal(err)
				}
				lastErr = ge.L1()
				b.StartTimer()
			}
			b.ReportMetric(lastErr, "pct-err")
		})
	}
}

// rewriteBenchTestbed builds one Congress synopsis at the given SP/NG
// for the Table 3 / Figure 18 timing benchmarks.
func rewriteBenchTestbed(b *testing.B, samplePct float64, numGroups int) *aqua.Aqua {
	b.Helper()
	p := benchParams()
	p.Skew = 0.86
	p.SamplePct = samplePct
	p.NumGroups = numGroups
	tb, err := workload.NewTestbed(p, []core.Strategy{core.Congress})
	if err != nil {
		b.Fatal(err)
	}
	return tb.ByStrategy[core.Congress]
}

// runRewriteBench times execution of the Q_g2 rewrite under one
// strategy (parse and rewrite once, execute per iteration — matching
// the paper's repeated-execution timing protocol).
func runRewriteBench(b *testing.B, a *aqua.Aqua, strat rewrite.Strategy) {
	b.Helper()
	sqlText, err := a.RewriteOnly(workload.Qg2, strat)
	if err != nil {
		b.Fatal(err)
	}
	stmt, err := sqlparse.Parse(sqlText)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Execute(a.Catalog(), stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3_RewriteBySampleSize regenerates Table 3: each rewrite
// strategy's Q_g2 time at 1%, 5%, and 10% samples (NG = 1000).
func BenchmarkTable3_RewriteBySampleSize(b *testing.B) {
	for _, sp := range []float64{1, 5, 10} {
		a := rewriteBenchTestbed(b, sp, 1000)
		for _, strat := range rewrite.Strategies {
			b.Run(fmt.Sprintf("SP=%.0f%%/%s", sp, strat), func(b *testing.B) {
				runRewriteBench(b, a, strat)
			})
		}
		b.Run(fmt.Sprintf("SP=%.0f%%/Exact", sp), func(b *testing.B) {
			stmt := sqlparse.MustParse(workload.Qg2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Execute(a.Catalog(), stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure18_RewriteByGroupCount regenerates Figure 18: each
// rewrite strategy's Q_g2 time as the number of groups grows (SP = 7%).
func BenchmarkFigure18_RewriteByGroupCount(b *testing.B) {
	for _, ng := range []int{10, 100, 1000, 10000} {
		a := rewriteBenchTestbed(b, 7, ng)
		for _, strat := range rewrite.Strategies {
			b.Run(fmt.Sprintf("NG=%d/%s", ng, strat), func(b *testing.B) {
				runRewriteBench(b, a, strat)
			})
		}
	}
}

// BenchmarkMaintenanceInsert measures the Section 6 maintainers'
// per-insert cost (the paper claims O(1) amortized for House/Senate and
// O(2^|G|) bookkeeping for Congress).
func BenchmarkMaintenanceInsert(b *testing.B) {
	schema := tpcd.Schema()
	g := core.MustGrouping(schema, tpcd.GroupingAttrs)
	rows := tpcd.MustGenerate(tpcd.Params{TableSize: 100_000, NumGroups: 1000, Seed: 2}).Rows()
	makeMaintainers := func() map[string]core.Maintainer {
		rng := rand.New(rand.NewSource(3))
		hm, _ := core.NewHouseMaintainer(g, 5000, rng)
		sm, _ := core.NewSenateMaintainer(g, 5000, rng)
		bm, _ := core.NewBasicCongressMaintainer(g, 5000, rng)
		cm, _ := core.NewCongressMaintainer(g, 5000, rng)
		dm, _ := core.NewCongressDeltaMaintainer(g, 5000, rng)
		return map[string]core.Maintainer{
			"House": hm, "Senate": sm, "BasicCongress": bm,
			"CongressEq8": cm, "CongressDelta": dm,
		}
	}
	for _, name := range []string{"House", "Senate", "BasicCongress", "CongressEq8", "CongressDelta"} {
		b.Run(name, func(b *testing.B) {
			m := makeMaintainers()[name]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Insert(rows[i%len(rows)])
			}
		})
	}
}

// BenchmarkAblationVarianceAware compares Congress with and without the
// Section 8 Neyman variance vector on data whose groups have equal sizes
// but very unequal variances — the setting the extension targets. The
// reported metric is the mean per-group error of an AVG query.
func BenchmarkAblationVarianceAware(b *testing.B) {
	// Build a relation with 20 equal-size groups; half have 100x the
	// value spread of the other half.
	rel := engine.NewRelation("t", engine.MustSchema(
		engine.Column{Name: "g", Kind: engine.KindInt},
		engine.Column{Name: "v", Kind: engine.KindFloat},
	))
	rng := rand.New(rand.NewSource(8))
	const perGroup = 2000
	for gi := 0; gi < 20; gi++ {
		spread := 1.0
		if gi%2 == 0 {
			spread = 100
		}
		for i := 0; i < perGroup; i++ {
			rel.Insert(engine.Row{
				engine.NewInt(int64(gi)),
				engine.NewFloat(1000 + rng.NormFloat64()*spread),
			})
		}
	}
	for _, variance := range []bool{false, true} {
		name := "plain"
		varCol := ""
		if variance {
			name = "neyman"
			varCol = "v"
		}
		b.Run(name, func(b *testing.B) {
			q := "select g, avg(v) from t group by g"
			cat := engine.NewCatalog()
			cat.Register(rel)
			exact, err := engine.ExecuteSQL(cat, q)
			if err != nil {
				b.Fatal(err)
			}
			// A single sample draw is noisy; rebuild the synopsis with
			// a fresh seed each iteration and report the mean error so
			// the ablation compares expected accuracy.
			var sumErr float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := aqua.New(cat)
				if _, err := a.CreateSynopsis(aqua.Config{
					Table: "t", GroupCols: []string{"g"},
					Strategy: core.Congress, Space: 800,
					VarianceColumn: varCol, Seed: int64(i + 1),
				}); err != nil {
					b.Fatal(err)
				}
				approx, err := a.Answer(q)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				ge, err := metrics.CompareAnswers(exact, approx, 1, 1)
				if err != nil {
					b.Fatal(err)
				}
				sumErr += ge.L1()
				b.StartTimer()
			}
			b.ReportMetric(sumErr/float64(b.N), "pct-err")
		})
	}
}

// BenchmarkAblationAllocationStrategies reports the pure allocation cost
// of each strategy at a realistic group count (the Congress max over
// 2^|G| groupings vs House's single pass).
func BenchmarkAblationAllocationStrategies(b *testing.B) {
	rel := tpcd.MustGenerate(tpcd.Params{TableSize: 50_000, NumGroups: 1000, Seed: 6})
	g := core.MustGrouping(rel.Schema, tpcd.GroupingAttrs)
	cube, err := core.BuildCube(rel, g)
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range core.Strategies {
		b.Run(strat.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Allocate(strat, cube, 3500); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationUpdateCost quantifies the Section 5.2 maintenance
// tradeoff the paper names but does not measure: refreshing one group's
// scale factor touches every sampled tuple of the group under the
// Integrated layout, but exactly one auxiliary row under the Normalized
// layouts. The rows-touched metric makes the asymmetry explicit.
func BenchmarkAblationUpdateCost(b *testing.B) {
	cat := engine.NewCatalog()
	rel := tpcd.MustGenerate(tpcd.Params{TableSize: 50_000, NumGroups: 27, GroupSkew: 1.2, Seed: 12})
	cat.Register(rel)
	a := aqua.New(cat)
	syn, err := a.CreateSynopsis(aqua.Config{
		Table: "lineitem", GroupCols: tpcd.GroupingAttrs,
		Strategy: core.Congress, Space: 3500, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	var key string
	biggest := 0
	syn.Sample().Each(func(s *sampleStratumB) {
		if len(s.Items) > biggest {
			biggest = len(s.Items)
			key = s.Key
		}
	})
	for _, strat := range []rewrite.Strategy{rewrite.Integrated, rewrite.Normalized, rewrite.KeyNormalized} {
		b.Run(strat.String(), func(b *testing.B) {
			touched := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := a.UpdateScaleFactor("lineitem", strat, key, float64(10+i))
				if err != nil {
					b.Fatal(err)
				}
				touched = n
			}
			b.ReportMetric(float64(touched), "rows-touched")
		})
	}
}

// BenchmarkMaintenanceDrift runs the Section 6 drift experiment (Expt M
// in EXPERIMENTS.md) and reports the stale-vs-maintained error gap.
func BenchmarkMaintenanceDrift(b *testing.B) {
	p := workload.Params{
		TableSize: 12_000, SamplePct: 7, NumGroups: 27, Skew: 1.2, Seed: 5,
	}
	var stale, maintained float64
	for i := 0; i < b.N; i++ {
		rows, err := workload.MaintenanceExperiment(p, 2)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		stale = last.StaleErr
		maintained = last.Eq8Err
	}
	b.ReportMetric(stale, "stale-pct-err")
	b.ReportMetric(maintained, "maintained-pct-err")
}

// BenchmarkParallelBuild compares serial one-pass construction against
// the sharded parallel path at increasing worker counts. Run with
// -congress.rows=1000000 to reproduce the ≥1M-row comparison; the
// speedup tracks available cores (workers beyond GOMAXPROCS add only
// merge overhead).
func BenchmarkParallelBuild(b *testing.B) {
	rel := tpcd.MustGenerate(tpcd.Params{TableSize: *benchRows, NumGroups: 1000, GroupSkew: 0.86, Seed: 4})
	g := core.MustGrouping(rel.Schema, tpcd.GroupingAttrs)
	space := *benchRows / 20
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(5))
			if _, _, err := core.Build(rel, g, core.Congress, space, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.BuildParallel(rel, g, core.Congress, space, 5, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimateDirect guards the Estimate hot path: the grouping
// column and aggregate column indices are resolved once per call, not
// once per sampled row, so a wide schema does not slow the per-row
// loop.
func BenchmarkEstimateDirect(b *testing.B) {
	w := Open()
	cols := make([]engine.Column, 0, 26)
	cols = append(cols, Col("region", String), Col("product", String))
	for i := 0; i < 23; i++ {
		cols = append(cols, Col(fmt.Sprintf("pad%02d", i), Float))
	}
	cols = append(cols, Col("amount", Float))
	tbl, err := w.CreateTable("wide", cols...)
	if err != nil {
		b.Fatal(err)
	}
	regions := []string{"east", "west", "north", "south"}
	products := []string{"pen", "ink", "desk"}
	pad := make([]Value, 23)
	for i := range pad {
		pad[i] = F(float64(i))
	}
	for i := 0; i < 20_000; i++ {
		row := make([]Value, 0, 26)
		row = append(row, Str(regions[i%len(regions)]), Str(products[i%len(products)]))
		row = append(row, pad...)
		row = append(row, F(float64(i%100)))
		if err := tbl.Insert(row...); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "wide", GroupBy: []string{"region", "product"}, Space: 1200, Seed: 3,
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Estimate("wide", []string{"region", "product"}, Sum, "amount", 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynopsisConstruction measures end-to-end one-pass synopsis
// construction (cube + allocation + materialization) per strategy.
func BenchmarkSynopsisConstruction(b *testing.B) {
	rel := tpcd.MustGenerate(tpcd.Params{TableSize: *benchRows, NumGroups: 1000, GroupSkew: 0.86, Seed: 4})
	g := core.MustGrouping(rel.Schema, tpcd.GroupingAttrs)
	for _, strat := range core.Strategies {
		b.Run(strat.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Build(rel, g, strat, *benchRows/20, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
