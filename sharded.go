package congress

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/estimate"
	"github.com/approxdb/congress/internal/metrics"
	"github.com/approxdb/congress/internal/sample"
	"github.com/approxdb/congress/internal/shard"
)

// StratifiedSample is the public name of the stratified sample a
// synopsis materializes; ShardedWarehouse.Sample returns the weighted
// union of the per-shard samples as one.
type StratifiedSample = sample.Stratified[Row]

// ShardedWarehouse partitions every table by hash of a routing key
// across K in-process shard warehouses, each holding its own
// congressional synopsis over its slice of the data. Inserts route to
// one shard; estimation scatter-gathers: each shard computes mergeable
// per-group partials (EstimatePartialsCtx), the coordinator merges them
// by sum-of-sums and sum-of-variances (estimate.MergePartials), and the
// confidence interval is taken exactly once (estimate.Finalize) — never
// by adding per-shard half-widths.
//
// Routing by the finest grouping key places every stratum whole on one
// shard, so the per-shard synopses partition the stratum set and the
// merged estimate is the single-warehouse estimate over the same
// strata. Routing by a coarser key (a subset of the grouping) is still
// statistically sound — a split stratum just becomes one stratum per
// shard — but the variance decomposition then differs from the
// unsharded build.
//
// A ShardedWarehouse keeps its shards in this process; durability
// belongs to the individual Warehouse and is not exposed through this
// handle. For shards that live in their own processes with their own
// data directories, see Coordinator, which speaks the same
// scatter-gather protocol over HTTP.
type ShardedWarehouse struct {
	router *shard.Router
	tel    *shard.Telemetry
	mtel   *metrics.Telemetry // coordinator-level counters (hybrid composition)
	shards []*Warehouse

	mu     sync.RWMutex
	tables map[string]*ShardedTable // lower-cased name → handle
}

// OpenSharded creates an empty sharded warehouse over the given number
// of shards (at least 1).
func OpenSharded(shards int) (*ShardedWarehouse, error) {
	r, err := shard.NewRouter(shards)
	if err != nil {
		return nil, fmt.Errorf("congress: %w", err)
	}
	sw := &ShardedWarehouse{
		router: r,
		tel:    shard.NewTelemetry(shards),
		mtel:   metrics.NewTelemetry(),
		shards: make([]*Warehouse, shards),
		tables: make(map[string]*ShardedTable),
	}
	for i := range sw.shards {
		sw.shards[i] = Open()
	}
	return sw, nil
}

// NumShards returns the configured shard count.
func (sw *ShardedWarehouse) NumShards() int { return len(sw.shards) }

// Shard returns the i-th shard warehouse for diagnostics and tests.
// Mutating a shard directly bypasses routing; treat it as read-only.
func (sw *ShardedWarehouse) Shard(i int) *Warehouse { return sw.shards[i] }

// ShardTelemetry returns the coordinator's per-shard counters.
func (sw *ShardedWarehouse) ShardTelemetry() *shard.Telemetry { return sw.tel }

// ConfigureCache re-sizes every shard's result cache; see
// Warehouse.ConfigureCache. Note that sharded estimates always bypass
// the result cache (the merged answer spans epochs of all shards), so
// this only affects direct access to the shard warehouses.
func (sw *ShardedWarehouse) ConfigureCache(maxEntries int, maxBytes int64) {
	for _, w := range sw.shards {
		w.ConfigureCache(maxEntries, maxBytes)
	}
}

// Close closes every shard. In-process shards hold no durable state,
// so this is a formality that keeps the lifecycle symmetric with
// Warehouse.
func (sw *ShardedWarehouse) Close() error {
	var first error
	for _, w := range sw.shards {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ShardedTable is a handle to a table partitioned across the shards.
type ShardedTable struct {
	sw     *ShardedWarehouse
	name   string
	g      *core.Grouping // routing grouping, resolved against the schema
	maxCol int            // highest routing ordinal, for short-row guards
	per    []*Table       // per-shard handles, indexed by shard ordinal
}

// CreateTable registers an empty table on every shard. routeBy names
// the routing key columns — use the finest grouping attributes the
// table's synopsis will be built over, so every stratum has a single
// home shard.
func (sw *ShardedWarehouse) CreateTable(name string, routeBy []string, cols ...engine.Column) (*ShardedTable, error) {
	schema, err := engine.NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	g, err := core.NewGrouping(schema, routeBy)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if len(g.Columns()) == 0 {
		return nil, fmt.Errorf("%w: sharded table %q needs at least one routing column", ErrBadQuery, name)
	}
	st := &ShardedTable{sw: sw, name: name, g: g, maxCol: maxOrdinal(g), per: make([]*Table, len(sw.shards))}
	for i, w := range sw.shards {
		t, err := w.CreateTable(name, cols...)
		if err != nil {
			return nil, err
		}
		st.per[i] = t
	}
	sw.mu.Lock()
	sw.tables[strings.ToLower(name)] = st
	sw.mu.Unlock()
	return st, nil
}

// AttachRelation bulk-loads an existing relation, partitioning its rows
// by the routing key: each shard receives its slice as a fresh relation
// under the same name and schema. The source relation is not retained.
func (sw *ShardedWarehouse) AttachRelation(rel *engine.Relation, routeBy []string) (*ShardedTable, error) {
	g, err := core.NewGrouping(rel.Schema, routeBy)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if len(g.Columns()) == 0 {
		return nil, fmt.Errorf("%w: sharded table %q needs at least one routing column", ErrBadQuery, rel.Name)
	}
	parts := make([][]Row, len(sw.shards))
	for _, row := range rel.Rows() {
		i := sw.router.Route(g.Key(row))
		parts[i] = append(parts[i], row)
	}
	st := &ShardedTable{sw: sw, name: rel.Name, g: g, maxCol: maxOrdinal(g), per: make([]*Table, len(sw.shards))}
	for i, w := range sw.shards {
		shardRel := engine.NewRelation(rel.Name, rel.Schema)
		if err := shardRel.InsertAll(parts[i]); err != nil {
			return nil, err
		}
		t, err := w.AttachRelation(shardRel)
		if err != nil {
			return nil, err
		}
		st.per[i] = t
		sw.tel.AddInserts(i, int64(len(parts[i])))
	}
	sw.mu.Lock()
	sw.tables[strings.ToLower(rel.Name)] = st
	sw.mu.Unlock()
	return st, nil
}

// Table returns the handle to a sharded table. The error wraps
// ErrUnknownTable for errors.Is classification.
func (sw *ShardedWarehouse) Table(name string) (*ShardedTable, error) {
	sw.mu.RLock()
	st := sw.tables[strings.ToLower(name)]
	sw.mu.RUnlock()
	if st == nil {
		return nil, fmt.Errorf("congress: %w %q", ErrUnknownTable, name)
	}
	return st, nil
}

// maxOrdinal returns the highest column ordinal the routing key reads.
func maxOrdinal(g *core.Grouping) int {
	m := 0
	for _, c := range g.Columns() {
		if c > m {
			m = c
		}
	}
	return m
}

// Insert routes one row to its home shard by the routing key and
// appends it there; the shard's synopsis maintainer (if any) is fed as
// on an unsharded warehouse.
func (t *ShardedTable) Insert(vals ...Value) error {
	row := Row(vals)
	if len(row) <= t.maxCol {
		return fmt.Errorf("%w: row has %d values but the routing key reads column %d",
			ErrBadQuery, len(row), t.maxCol)
	}
	i := t.sw.router.Route(t.g.Key(row))
	if err := t.per[i].Insert(vals...); err != nil {
		return err
	}
	t.sw.tel.AddInserts(i, 1)
	return nil
}

// NumRows returns the total row count across shards.
func (t *ShardedTable) NumRows() int {
	n := 0
	for _, p := range t.per {
		n += p.NumRows()
	}
	return n
}

// Columns returns a copy of the table's schema columns, in order.
func (t *ShardedTable) Columns() []engine.Column { return t.per[0].Columns() }

// Name returns the table name.
func (t *ShardedTable) Name() string { return t.name }

// RouteOf reports which shard a row's routing key maps to, for tests
// and diagnostics.
func (t *ShardedTable) RouteOf(row Row) int { return t.sw.router.Route(t.g.Key(row)) }

// BuildSynopsis builds a congressional synopsis on every non-empty
// shard of spec.Table, splitting spec.Space across shards proportional
// to their row counts (floor + largest remainder, so the total is
// exactly spec.Space). Per-shard sampling seeds derive from spec.Seed
// and the shard ordinal, so the build is deterministic for a fixed
// (data, routing, Seed) and shards never share a random stream.
func (sw *ShardedWarehouse) BuildSynopsis(spec SynopsisSpec) error {
	st, err := sw.Table(spec.Table)
	if err != nil {
		return err
	}
	rows := make([]int, len(sw.shards))
	total := 0
	for i, p := range st.per {
		rows[i] = p.NumRows()
		total += rows[i]
	}
	if total == 0 {
		return fmt.Errorf("%w: sharded table %q is empty", ErrBadQuery, spec.Table)
	}
	space := splitProportional(spec.Space, rows, total)
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	for i, w := range sw.shards {
		if rows[i] == 0 {
			continue // empty shard: no synopsis; estimation skips it
		}
		ss := spec
		ss.Space = space[i]
		ss.Seed = seed + int64(i)*0x9E37 // distinct deterministic streams
		if err := w.BuildSynopsis(ss); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// splitProportional divides budget across weights summing to total by
// floors plus largest remainders; the parts sum exactly to budget and
// zero-weight entries get zero.
func splitProportional(budget int, weights []int, total int) []int {
	out := make([]int, len(weights))
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, 0, len(weights))
	assigned := 0
	for i, wt := range weights {
		if wt == 0 {
			continue
		}
		exact := float64(budget) * float64(wt) / float64(total)
		out[i] = int(exact)
		assigned += out[i]
		rems = append(rems, rem{i, exact - float64(out[i])})
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].i < rems[b].i
	})
	for k := 0; k < budget-assigned && k < len(rems); k++ {
		out[rems[k].i]++
	}
	return out
}

// RefreshSynopsis re-materializes the table's sample on every shard
// that has a synopsis, in parallel.
func (sw *ShardedWarehouse) RefreshSynopsis(table string) error {
	if !sw.hasSynopsis(table) {
		return fmt.Errorf("%w %q", ErrNoSynopsis, table)
	}
	_, err := shard.Fanout(context.Background(), len(sw.shards), func(_ context.Context, i int) (struct{}, error) {
		if _, ok := sw.shards[i].aq.Synopsis(table); !ok {
			return struct{}{}, nil // empty shard skipped at build time
		}
		return struct{}{}, sw.shards[i].RefreshSynopsis(table)
	})
	return err
}

// hasSynopsis reports whether any shard holds a synopsis for table —
// the distinction between "never built" (an error) and "this shard was
// empty at build time" (skipped during scatter-gather).
func (sw *ShardedWarehouse) hasSynopsis(table string) bool {
	for _, w := range sw.shards {
		if _, ok := w.aq.Synopsis(table); ok {
			return true
		}
	}
	return false
}

// Estimate scatter-gathers a direct estimate; see EstimateCtx.
func (sw *ShardedWarehouse) Estimate(table string, grouping []string, agg estimate.Aggregate, aggCol string, confidence float64) ([]estimate.GroupEstimate, error) {
	return sw.EstimateCtx(context.Background(), table, grouping, agg, aggCol, confidence)
}

// EstimateCtx answers a group-by estimate by scatter-gather: every
// shard with a synopsis computes per-group partials over its own
// sample, the coordinator merges them (sums of sums, sums of
// variances; groups absent on a shard contribute that shard's explicit
// zero-information record), and the confidence interval is taken once
// over the merged state. With finest-key routing the result is
// numerically identical to a single warehouse holding the same strata.
//
// Fan-out legs observe ctx: the first failing shard cancels its
// siblings, and per-shard leg latency lands in ShardTelemetry.
func (sw *ShardedWarehouse) EstimateCtx(ctx context.Context, table string, grouping []string, agg estimate.Aggregate, aggCol string, confidence float64) ([]estimate.GroupEstimate, error) {
	merged, err := sw.EstimatePartialsCtx(ctx, table, grouping, aggCol)
	if err != nil {
		return nil, err
	}
	return estimate.Finalize(merged, agg, confidence)
}

// EstimatePartialsCtx scatter-gathers the partials scan across the
// shards and merges, without taking confidence intervals — the same
// contract as Warehouse.EstimatePartialsCtx, so an in-process sharded
// warehouse can itself serve /v1/estimate/partials as one leg of a
// larger distributed deployment. Shards that were empty at build time
// (no synopsis) contribute nothing.
func (sw *ShardedWarehouse) EstimatePartialsCtx(ctx context.Context, table string, grouping []string, aggCol string) ([]estimate.GroupPartial, error) {
	return sw.EstimatePartialsOpts(ctx, table, grouping, aggCol, PartialsOptions{})
}

// EstimatePartialsOpts is EstimatePartialsCtx with options; NoHybrid is
// forwarded to every shard so a covered shard's exact datacube answer is
// suppressed and the whole fan-out comes from the samples.
func (sw *ShardedWarehouse) EstimatePartialsOpts(ctx context.Context, table string, grouping []string, aggCol string, opts PartialsOptions) ([]estimate.GroupPartial, error) {
	if !sw.hasSynopsis(table) {
		return nil, fmt.Errorf("%w %q", ErrNoSynopsis, table)
	}
	backends := make([]ShardBackend, len(sw.shards))
	for i, w := range sw.shards {
		backends[i] = localShard{w}
	}
	parts, _, err := scatterPartials(ctx, sw.tel, backends, table, grouping, aggCol, opts)
	if err != nil {
		return nil, err
	}
	merged := estimate.MergePartials(parts...)
	if !opts.NoHybrid && hasResidualMix(merged) {
		sw.mtel.HybridResidual()
	}
	return merged, nil
}

// EstimateQuery matches the Warehouse signature so congressd can serve
// either backend. Sharded estimates always bypass the result cache:
// the merged answer depends on every shard's data epoch at once, and a
// coordinator-level key would have to read all of them racily. The
// returned status is therefore always CacheBypass.
func (sw *ShardedWarehouse) EstimateQuery(ctx context.Context, table string, grouping []string, agg estimate.Aggregate, aggCol string, confidence float64, noCache bool) ([]estimate.GroupEstimate, CacheStatus, error) {
	return sw.EstimateQueryOpts(ctx, table, grouping, agg, aggCol, confidence, ApproxOptions{NoCache: noCache})
}

// EstimateQueryOpts is EstimateQuery with the full option set; only
// NoHybrid is meaningful here (sharded estimates always bypass the
// result cache).
func (sw *ShardedWarehouse) EstimateQueryOpts(ctx context.Context, table string, grouping []string, agg estimate.Aggregate, aggCol string, confidence float64, opts ApproxOptions) ([]estimate.GroupEstimate, CacheStatus, error) {
	merged, err := sw.EstimatePartialsOpts(ctx, table, grouping, aggCol, PartialsOptions{NoHybrid: opts.NoHybrid})
	if err != nil {
		return nil, CacheBypass, err
	}
	ests, err := estimate.Finalize(merged, agg, confidence)
	return ests, CacheBypass, err
}

// Sample returns the weighted union of the per-shard stratified samples
// for a table: group populations add, and when perGroupCap forces a
// subsample the per-shard draws follow the group's population split
// (core.UnionStratified). seed fixes the draw (0 = 1). perGroupCap <= 0
// concatenates everything.
func (sw *ShardedWarehouse) Sample(table string, perGroupCap int, seed int64) (*StratifiedSample, error) {
	if !sw.hasSynopsis(table) {
		return nil, fmt.Errorf("%w %q", ErrNoSynopsis, table)
	}
	parts := make([]*sample.Stratified[Row], 0, len(sw.shards))
	for _, w := range sw.shards {
		if syn, ok := w.aq.Synopsis(table); ok {
			parts = append(parts, syn.Sample())
		}
	}
	return core.UnionStratified(parts, perGroupCap, seed)
}

// AllocationTable concatenates the per-shard allocation tables and
// re-sorts by descending target allocation (ties broken by rendered
// group, so the listing is deterministic).
func (sw *ShardedWarehouse) AllocationTable(table string) ([]AllocationRow, error) {
	if !sw.hasSynopsis(table) {
		return nil, fmt.Errorf("congress: no synopsis for %q", table)
	}
	var out []AllocationRow
	for _, w := range sw.shards {
		if _, ok := w.aq.Synopsis(table); !ok {
			continue
		}
		rows, err := w.AllocationTable(table)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Target != out[b].Target {
			return out[a].Target > out[b].Target
		}
		return strings.Join(out[a].Group, "\x1f") < strings.Join(out[b].Group, "\x1f")
	})
	return out, nil
}

// Synopses lists every synopsis merged across shards: sizes, strata and
// pending counts sum; Shards counts the shards holding a partition.
// Sorted by table name.
func (sw *ShardedWarehouse) Synopses() []SynopsisInfo {
	byTable := make(map[string]*SynopsisInfo)
	for _, w := range sw.shards {
		for _, info := range w.Synopses() {
			m := byTable[info.Table]
			if m == nil {
				cp := info
				cp.Shards = 1
				byTable[info.Table] = &cp
				continue
			}
			m.Space += info.Space
			m.SampleSize += info.SampleSize
			m.Strata += info.Strata
			m.PendingInserts += info.PendingInserts
			m.Shards++
		}
	}
	out := make([]SynopsisInfo, 0, len(byTable))
	for _, info := range byTable {
		out = append(out, *info)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Table < out[b].Table })
	return out
}

// Metrics sums the per-shard telemetry snapshots field-wise into one
// warehouse-level reading, plus the coordinator-level counters (the
// hybrid residual composition count lives on the coordinator, not any
// single shard).
func (sw *ShardedWarehouse) Metrics() MetricsSnapshot {
	sum := sw.mtel.Snapshot()
	for _, w := range sw.shards {
		addSnapshot(&sum, w.Metrics())
	}
	return sum
}

// addSnapshot folds one shard's telemetry into the running sum.
func addSnapshot(sum *MetricsSnapshot, s MetricsSnapshot) {
	sum.RowsScanned += s.RowsScanned
	sum.StrataTouched += s.StrataTouched
	sum.MaintainerInserts += s.MaintainerInserts
	sum.MaintainerQueueDepth += s.MaintainerQueueDepth
	sum.CacheHits += s.CacheHits
	sum.CacheMisses += s.CacheMisses
	sum.CacheEvictions += s.CacheEvictions
	sum.CacheInvalidations += s.CacheInvalidations
	sum.HybridExact += s.HybridExact
	sum.HybridResidual += s.HybridResidual
	sum.HybridFallback += s.HybridFallback
	addOp(&sum.Build, s.Build)
	addOp(&sum.Refresh, s.Refresh)
	addOp(&sum.Answer, s.Answer)
	addOp(&sum.Estimate, s.Estimate)
	sum.WALRecords += s.WALRecords
	sum.WALBytes += s.WALBytes
	sum.Fsyncs += s.Fsyncs
	addOp(&sum.Snapshots, s.Snapshots)
	sum.SnapshotBytes += s.SnapshotBytes
	sum.ReplayedRecords += s.ReplayedRecords
	sum.TruncatedBytes += s.TruncatedBytes
	sum.Recovery += s.Recovery
}

func addOp(sum *metrics.OpSnapshot, o metrics.OpSnapshot) {
	sum.Count += o.Count
	sum.Total += o.Total
}
