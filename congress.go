// Package congress is a Go implementation of congressional samples for
// approximate answering of group-by queries (Acharya, Gibbons, Poosala;
// SIGMOD 2000), together with the complete substrate the technique runs
// on: an in-memory SQL engine, the Aqua-style approximate-query
// middleware, stratified estimators with error bounds, the four
// query-rewriting strategies of the paper's Section 5, and one-pass
// construction plus incremental maintenance of the samples.
//
// The central idea: a uniform sample of a warehouse table answers
// aggregate queries well overall, but group-by queries see terrible
// accuracy on small groups. Congressional samples allocate a fixed
// sample budget so that every group under every combination of grouping
// columns is well represented, by taking the per-group maximum of the
// optimal allocations for all 2^|G| groupings and scaling back to the
// budget.
//
// Quick start:
//
//	w := congress.Open()
//	tbl, _ := w.CreateTable("sales",
//		congress.Col("region", congress.String),
//		congress.Col("product", congress.String),
//		congress.Col("amount", congress.Float),
//	)
//	tbl.Insert(congress.Str("east"), congress.Str("pen"), congress.F(12.5))
//	...
//	w.BuildSynopsis(congress.SynopsisSpec{
//		Table: "sales", GroupBy: []string{"region", "product"}, Space: 10000,
//	})
//	res, _ := w.Approx(`select region, sum(amount) from sales group by region`)
//	fmt.Print(res)
package congress

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"github.com/approxdb/congress/internal/aqua"
	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/datacube"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/estimate"
	"github.com/approxdb/congress/internal/metrics"
	"github.com/approxdb/congress/internal/persist"
	"github.com/approxdb/congress/internal/rewrite"
)

// Strategy selects the sample-space allocation scheme of Section 4.
type Strategy = core.Strategy

// Allocation strategies.
const (
	// House samples uniformly: space proportional to group size.
	House = core.House
	// Senate gives every finest group equal space.
	Senate = core.Senate
	// BasicCongress takes the per-group max of House and Senate.
	BasicCongress = core.BasicCongress
	// Congress covers every grouping combination (the recommended
	// default).
	Congress = core.Congress
)

// RewriteStrategy selects the query-rewriting technique of Section 5.
type RewriteStrategy = rewrite.Strategy

// Rewriting strategies.
const (
	// Integrated stores a scale factor on each sample tuple.
	Integrated = rewrite.Integrated
	// NestedIntegrated scales once per group via a nested query.
	NestedIntegrated = rewrite.NestedIntegrated
	// Normalized joins a separate scale-factor relation on the grouping
	// columns.
	Normalized = rewrite.Normalized
	// KeyNormalized joins the scale-factor relation on a group id.
	KeyNormalized = rewrite.KeyNormalized
)

// Kind is a column type.
type Kind = engine.Kind

// Column kinds.
const (
	Int    = engine.KindInt
	Float  = engine.KindFloat
	String = engine.KindString
	Date   = engine.KindDate
	Bool   = engine.KindBool
)

// Value is a dynamically typed SQL value.
type Value = engine.Value

// Row is one tuple.
type Row = engine.Row

// Result is a query result.
type Result = engine.Result

// Value constructors.
var (
	// I builds an integer value.
	I = engine.NewInt
	// F builds a float value.
	F = engine.NewFloat
	// Str builds a string value.
	Str = engine.NewString
	// B builds a boolean value.
	B = engine.NewBool
	// D parses an ISO date (panics on malformed input).
	D = engine.MustParseDate
)

// Col describes a column.
func Col(name string, kind Kind) engine.Column {
	return engine.Column{Name: name, Kind: kind}
}

// Warehouse is an in-memory warehouse with approximate query answering:
// an engine catalog fronted by the Aqua middleware. OpenDir (or
// EnablePersistence) makes it durable: mutations are write-ahead
// logged and snapshotted to a data directory.
type Warehouse struct {
	cat *engine.Catalog
	aq  *aqua.Aqua

	// pmu guards the durability wiring: the base-table registry the
	// snapshot exporter walks and the persistence manager handle.
	pmu        sync.Mutex
	baseTables map[string]bool // lower-cased names of base relations
	mgr        *persist.Manager

	// pbar is the persistence-enable barrier: mutations hold it shared,
	// EnablePersistence holds it exclusively across the manager start.
	// Without it a mutation could land between Start's initial snapshot
	// export and the manager handle being published — in neither the
	// snapshot nor the WAL, silently lost on crash.
	pbar sync.RWMutex
}

// Open creates an empty warehouse with result caching enabled at the
// default sizing (DefaultCacheEntries entries, DefaultCacheBytes bytes);
// tune or disable it with ConfigureCache.
func Open() *Warehouse {
	cat := engine.NewCatalog()
	w := &Warehouse{cat: cat, aq: aqua.New(cat), baseTables: make(map[string]bool)}
	w.ConfigureCache(0, 0)
	return w
}

// Default result-cache sizing used by Open.
const (
	// DefaultCacheEntries is the default result-cache entry bound.
	DefaultCacheEntries = 4096
	// DefaultCacheBytes is the default result-cache byte bound (64 MiB).
	DefaultCacheBytes int64 = 64 << 20
)

// ConfigureCache re-sizes the warehouse's result cache. maxEntries: 0
// keeps the default bound, < 0 disables result caching entirely.
// maxBytes: 0 keeps the default bound, < 0 removes the byte bound.
// Reconfiguring replaces the cache, so previously cached answers are
// dropped. The parse and plan caches are unaffected — they hold pure
// derivations of the query text and never need invalidation.
func (w *Warehouse) ConfigureCache(maxEntries int, maxBytes int64) {
	entries := maxEntries
	switch {
	case entries == 0:
		entries = DefaultCacheEntries
	case entries < 0:
		entries = 0 // disables: aqua treats a non-positive bound as off
	}
	bytes := maxBytes
	switch {
	case bytes == 0:
		bytes = DefaultCacheBytes
	case bytes < 0:
		bytes = 0 // unlimited
	}
	w.aq.EnableResultCache(entries, bytes)
}

// CacheStatus reports how an answer was produced: from the result cache
// (CacheHit), by executing and storing (CacheMiss), or with the cache
// off or skipped (CacheBypass). Its String form ("hit", "miss",
// "bypass") is the X-Congress-Cache header value congressd emits.
type CacheStatus = aqua.CacheStatus

// Cache statuses.
const (
	CacheBypass = aqua.CacheBypass
	CacheMiss   = aqua.CacheMiss
	CacheHit    = aqua.CacheHit
)

// ApproxOptions tunes one ApproxQuery call.
type ApproxOptions struct {
	// Rewrite overrides the synopsis's default rewriting strategy when
	// UseRewrite is set.
	Rewrite    RewriteStrategy
	UseRewrite bool
	// NoCache answers from the sample directly, skipping the result
	// cache for this call (the answer is not stored either).
	NoCache bool
	// NoHybrid disables the hybrid exact-aggregate path for this call:
	// the estimate comes from the congressional sample alone even when
	// the synopsis's datacube prefixes cover the query. Useful for
	// benchmarking the pure-sample bound and for differential tests.
	NoHybrid bool
}

// Table is a handle to a base relation.
type Table struct {
	w   *Warehouse
	rel *engine.Relation
}

// CreateTable registers a new empty table. On a persistent warehouse
// the DDL is write-ahead logged.
func (w *Warehouse) CreateTable(name string, cols ...engine.Column) (*Table, error) {
	var tbl *Table
	err := w.logged(&persist.Record{
		Kind:  persist.RecCreateTable,
		Table: name,
		Cols:  append([]engine.Column(nil), cols...),
	}, func() error {
		schema, err := engine.NewSchema(cols...)
		if err != nil {
			return err
		}
		rel := engine.NewRelation(name, schema)
		w.cat.Register(rel)
		w.noteBaseTable(name)
		tbl = &Table{w: w, rel: rel}
		return nil
	})
	return tbl, err
}

// AttachRelation registers an existing engine relation (one produced by
// the tpcd generator or engine.ReadCSV) as a warehouse table, avoiding a
// row-by-row copy through CreateTable/Insert. On a persistent warehouse
// the attachment is write-ahead logged (schema plus rows), so WAL
// replay — and live replication followers tailing the log — see it
// immediately instead of one snapshot rotation late; a background
// snapshot is additionally requested so the log compacts soon after.
func (w *Warehouse) AttachRelation(rel *engine.Relation) (*Table, error) {
	err := w.logged(&persist.Record{
		Kind:  persist.RecAttachRelation,
		Table: rel.Name,
		Cols:  append([]engine.Column(nil), rel.Schema.Cols...),
		Rows:  rel.Rows(),
	}, func() error {
		w.cat.Register(rel)
		w.noteBaseTable(rel.Name)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if mgr := w.manager(); mgr != nil {
		mgr.RequestSnapshot()
	}
	return &Table{w: w, rel: rel}, nil
}

// Table returns a handle to an existing table. The error wraps
// ErrUnknownTable for errors.Is classification.
func (w *Warehouse) Table(name string) (*Table, error) {
	rel, ok := w.cat.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("congress: %w %q", ErrUnknownTable, name)
	}
	return &Table{w: w, rel: rel}, nil
}

// Insert appends one row. If the table has a synopsis, the row also
// flows to its incremental maintainer so the sample stays fresh without
// re-reading the table (call RefreshSynopsis to make maintained state
// visible to queries), and the synopsis's data epoch advances so cached
// answers are invalidated.
//
// Grouping-column values must not contain the EstimateKeySep unit
// separator (U+001F): composite group keys are joined with it, so a
// value containing it would silently merge or split groups. Such rows
// are rejected before touching the base relation.
func (t *Table) Insert(vals ...Value) error {
	row := Row(vals)
	return t.w.logged(&persist.Record{
		Kind:  persist.RecInsert,
		Table: t.rel.Name,
		Row:   row,
	}, func() error {
		return t.insertRow(row)
	})
}

// insertRow is the unlogged insert path: validation, the base relation
// append, and the maintainer feed. WAL replay calls it directly.
func (t *Table) insertRow(row Row) error {
	syn, hasSyn := t.w.aq.Synopsis(t.rel.Name)
	if hasSyn {
		for _, ci := range syn.Grouping().Columns() {
			if ci < len(row) && row[ci].K == engine.KindString &&
				strings.Contains(row[ci].S, EstimateKeySep) {
				return fmt.Errorf("%w: grouping value %q contains the reserved key separator U+001F",
					ErrBadQuery, row[ci].S)
			}
		}
	}
	if err := t.rel.Insert(row); err != nil {
		return err
	}
	if hasSyn {
		syn.Insert(row)
	}
	return nil
}

// NumRows returns the table's row count.
func (t *Table) NumRows() int { return t.rel.NumRows() }

// Columns returns a copy of the table's schema columns, in order.
func (t *Table) Columns() []engine.Column {
	return append([]engine.Column(nil), t.rel.Schema.Cols...)
}

// Name returns the table name.
func (t *Table) Name() string { return t.rel.Name }

// SynopsisSpec configures BuildSynopsis.
type SynopsisSpec struct {
	// Table is the base table to summarize.
	Table string
	// GroupBy is the grouping attribute set G the synopsis must serve.
	GroupBy []string
	// Space is the sample budget in tuples.
	Space int
	// Strategy is the allocation scheme (default Congress).
	Strategy Strategy
	// Rewrite is the strategy used by Approx (default Integrated).
	Rewrite RewriteStrategy
	// WithErrorBounds appends Aqua error columns to approximate answers.
	WithErrorBounds bool
	// VarianceColumn enables variance-aware allocation (the paper's
	// Section 8 extension): groups whose values in this column vary
	// more receive extra sample space via Neyman allocation.
	VarianceColumn string
	// TargetGroupings specializes the synopsis to a known query mix:
	// only the listed groupings (each a subset of GroupBy; include an
	// empty slice for the no-group-by query) compete for sample space,
	// instead of all 2^|G| combinations.
	TargetGroupings [][]string
	// Recency applies the Section 8 ageing bias: groups with newer
	// values in the named column (one of GroupBy, typically a date) get
	// geometrically more sample space. Decay in (0,1] is the per-step
	// multiplier into the past.
	Recency *Recency
	// BuildWorkers shards the one-pass construction scan across this
	// many goroutines (<= 1 builds serially). The sample is
	// deterministic for a fixed (Seed, BuildWorkers) pair; pass
	// congress.DefaultBuildWorkers() to saturate the machine.
	BuildWorkers int
	// Seed fixes sampling randomness for reproducibility (0 = 1).
	Seed int64
}

// DefaultBuildWorkers returns the BuildWorkers value that saturates the
// machine (GOMAXPROCS).
func DefaultBuildWorkers() int { return core.DefaultWorkers() }

// BuildSynopsis precomputes a biased sample of the table and registers
// the sample relations used to answer queries approximately. Existing
// Table handles start feeding the new synopsis's maintainer on their
// next Insert.
//
// Grouping-column values already in the table are validated against the
// EstimateKeySep contract: a value containing U+001F (possible if it was
// inserted before the synopsis existed, or arrived through CSV or
// generator loading) fails the build with ErrBadQuery rather than
// silently corrupting composite group keys.
func (w *Warehouse) BuildSynopsis(spec SynopsisSpec) error {
	cfg := aqua.Config{
		Table:            spec.Table,
		GroupCols:        spec.GroupBy,
		Strategy:         spec.Strategy,
		Space:            spec.Space,
		Rewrite:          spec.Rewrite,
		WithErrorColumns: spec.WithErrorBounds,
		VarianceColumn:   spec.VarianceColumn,
		TargetGroupings:  spec.TargetGroupings,
		Recency:          spec.Recency,
		BuildWorkers:     spec.BuildWorkers,
		Seed:             spec.Seed,
	}
	return w.logged(&persist.Record{
		Kind:     persist.RecBuildSynopsis,
		Table:    spec.Table,
		Synopsis: &cfg,
	}, func() error {
		_, err := w.aq.CreateSynopsis(cfg)
		return err
	})
}

// Recency configures the ageing bias of SynopsisSpec.
type Recency = aqua.Recency

// DimJoin is one fact-to-dimension foreign-key edge of a star schema.
type DimJoin = aqua.DimJoin

// JoinSpec describes a star-schema join for BuildJoinSynopsis.
type JoinSpec struct {
	// Name registers the joined (wide) relation under this name; query
	// it like any table.
	Name string
	// Fact is the central fact table.
	Fact string
	// Dims are the dimension joins.
	Dims []DimJoin
}

// BuildJoinSynopsis materializes the star join Fact ⋈ Dims as a single
// wide relation (valid because foreign-key joins preserve fact-table
// cardinality — the join-synopsis observation of the paper's Section 2)
// and builds a synopsis over it. spec.Table is ignored; the synopsis
// covers join.Name, and GroupBy columns may come from any joined table.
// On a persistent warehouse the build is write-ahead logged (the join is
// deterministic given the joined tables' replay-position contents, so
// replay reproduces it), and a snapshot is additionally forced so the
// materialized relation compacts out of the log immediately.
func (w *Warehouse) BuildJoinSynopsis(join JoinSpec, spec SynopsisSpec) error {
	js := aqua.JoinSpec{
		Name: join.Name,
		Fact: join.Fact,
		Dims: join.Dims,
	}
	cfg := aqua.Config{
		GroupCols:        spec.GroupBy,
		Strategy:         spec.Strategy,
		Space:            spec.Space,
		Rewrite:          spec.Rewrite,
		WithErrorColumns: spec.WithErrorBounds,
		VarianceColumn:   spec.VarianceColumn,
		TargetGroupings:  spec.TargetGroupings,
		Recency:          spec.Recency,
		BuildWorkers:     spec.BuildWorkers,
		Seed:             spec.Seed,
	}
	err := w.logged(&persist.Record{
		Kind:     persist.RecBuildJoinSynopsis,
		Table:    join.Name,
		Join:     &js,
		Synopsis: &cfg,
	}, func() error {
		if _, err := w.aq.CreateJoinSynopsis(js, cfg); err != nil {
			return err
		}
		w.noteBaseTable(join.Name)
		return nil
	})
	if err != nil {
		return err
	}
	if mgr := w.manager(); mgr != nil {
		return mgr.Snapshot()
	}
	return nil
}

// RefreshSynopsis re-materializes a table's sample relations from its
// incremental maintainer.
func (w *Warehouse) RefreshSynopsis(table string) error {
	return w.logged(&persist.Record{
		Kind:  persist.RecRefreshSynopsis,
		Table: table,
	}, func() error {
		return w.aq.Refresh(table)
	})
}

// AllocationRow is one line of the Figure 5-style allocation table a
// synopsis reports.
type AllocationRow = aqua.AllocationRow

// AllocationTable reports how a synopsis's space budget was divided
// among the finest groups, sorted by descending allocation.
func (w *Warehouse) AllocationTable(table string) ([]AllocationRow, error) {
	syn, ok := w.aq.Synopsis(table)
	if !ok {
		return nil, fmt.Errorf("congress: no synopsis for %q", table)
	}
	return syn.AllocationTable(), nil
}

// Query executes SQL exactly against the base tables.
func (w *Warehouse) Query(sql string) (*Result, error) {
	return engine.ExecuteSQL(w.cat, sql)
}

// QueryCtx executes SQL exactly under a context: parse errors wrap
// ErrBadQuery, and the deadline or cancellation is observed inside the
// engine's row-scan loops so a large scan stops promptly.
func (w *Warehouse) QueryCtx(ctx context.Context, sql string) (*Result, error) {
	return w.aq.ExactCtx(ctx, sql)
}

// Approx answers an aggregate query approximately from the table's
// synopsis using its configured rewrite strategy.
func (w *Warehouse) Approx(sql string) (*Result, error) {
	return w.aq.Answer(sql)
}

// ApproxCtx is Approx under a context (see QueryCtx).
func (w *Warehouse) ApproxCtx(ctx context.Context, sql string) (*Result, error) {
	return w.aq.AnswerCtx(ctx, sql)
}

// ApproxQuery is the full cached read path: the query is parsed and
// rewritten through the plan cache and answered through the result cache
// (unless disabled or opts.NoCache), reporting whether the answer was a
// cache hit. Concurrent identical misses share one execution. The
// returned Result may be shared with other callers and must be treated
// as read-only.
func (w *Warehouse) ApproxQuery(ctx context.Context, sql string, opts ApproxOptions) (*Result, CacheStatus, error) {
	return w.aq.AnswerQuery(ctx, sql, aqua.QueryOptions{
		Strategy:    opts.Rewrite,
		UseStrategy: opts.UseRewrite,
		NoCache:     opts.NoCache,
	})
}

// ApproxWith answers approximately using an explicit rewrite strategy.
func (w *Warehouse) ApproxWith(sql string, strat RewriteStrategy) (*Result, error) {
	return w.aq.AnswerWith(sql, strat)
}

// ApproxWithCtx is ApproxWith under a context (see QueryCtx).
func (w *Warehouse) ApproxWithCtx(ctx context.Context, sql string, strat RewriteStrategy) (*Result, error) {
	return w.aq.AnswerWithCtx(ctx, sql, strat)
}

// Explain returns the rewritten SQL a strategy would execute, without
// running it.
func (w *Warehouse) Explain(sql string, strat RewriteStrategy) (string, error) {
	return w.aq.RewriteOnly(sql, strat)
}

// Estimate answers a query directly from a table's stratified sample
// without SQL, returning per-group estimates with confidence bounds.
// grouping selects the output grouping columns (a subset of the
// synopsis's GroupBy); agg and aggCol pick the operator and the
// aggregated column; confidence 0 means 90%. Multi-column group keys
// join the rendered values with EstimateKeySep; split them back with
// SplitEstimateKey.
func (w *Warehouse) Estimate(table string, grouping []string, agg estimate.Aggregate, aggCol string, confidence float64) ([]estimate.GroupEstimate, error) {
	return w.EstimateCtx(context.Background(), table, grouping, agg, aggCol, confidence)
}

// EstimateCtx is Estimate under a context: the deadline or cancellation
// is observed inside the per-row estimation loop. Validation errors wrap
// ErrBadQuery and a missing synopsis wraps ErrNoSynopsis, for errors.Is
// classification by callers such as the HTTP server.
func (w *Warehouse) EstimateCtx(ctx context.Context, table string, grouping []string, agg estimate.Aggregate, aggCol string, confidence float64) ([]estimate.GroupEstimate, error) {
	ests, _, err := w.EstimateQuery(ctx, table, grouping, agg, aggCol, confidence, false)
	return ests, err
}

// EstimateQuery is EstimateCtx through the result cache: estimate sets
// are memoized under the synopsis's data epoch exactly like SQL answers,
// so repeated dashboards hitting the same (table, grouping, aggregate)
// tuple skip the sample scan until the data changes. noCache skips the
// cache for this call. The returned slice may be shared with concurrent
// callers and must be treated as read-only.
func (w *Warehouse) EstimateQuery(ctx context.Context, table string, grouping []string, agg estimate.Aggregate, aggCol string, confidence float64, noCache bool) ([]estimate.GroupEstimate, CacheStatus, error) {
	return w.EstimateQueryOpts(ctx, table, grouping, agg, aggCol, confidence, ApproxOptions{NoCache: noCache})
}

// EstimateQueryOpts is EstimateQuery with the full option set: NoCache
// skips the result cache and NoHybrid forces the pure-sample estimator
// even when the synopsis's exact datacube covers the request. Hybrid and
// pure-sample answers cache under distinct keys, so toggling NoHybrid
// never serves the other mode's result.
func (w *Warehouse) EstimateQueryOpts(ctx context.Context, table string, grouping []string, agg estimate.Aggregate, aggCol string, confidence float64, opts ApproxOptions) ([]estimate.GroupEstimate, CacheStatus, error) {
	rc := w.aq.ResultCache()
	if rc == nil || opts.NoCache {
		ests, err := w.estimateUncached(ctx, table, grouping, agg, aggCol, confidence, opts.NoHybrid)
		return ests, CacheBypass, err
	}
	syn, ok := w.aq.Synopsis(table)
	if !ok {
		return nil, CacheBypass, fmt.Errorf("%w %q", ErrNoSynopsis, table)
	}
	// Load the epoch before the sample scan (same ordering contract as
	// the SQL result cache: fresher data under an old key is harmless,
	// stale data under a new key is impossible).
	key := fmt.Sprintf("e\x00%d\x00%d\x00%s\x00%d\x00%s\x00%g\x00%t",
		syn.ID(), syn.Epoch(), joinParts(grouping), int(agg), strings.ToLower(aggCol), confidence, opts.NoHybrid)
	v, hit, err := rc.Do(ctx, key, func() (any, int64, error) {
		ests, err := w.estimateUncached(ctx, table, grouping, agg, aggCol, confidence, opts.NoHybrid)
		if err != nil {
			return nil, 0, err
		}
		cost := int64(64)
		for _, e := range ests {
			cost += int64(64 + len(e.Key))
		}
		return ests, cost, nil
	})
	if err != nil {
		return nil, CacheMiss, err
	}
	status := CacheMiss
	if hit {
		status = CacheHit
	}
	return v.([]estimate.GroupEstimate), status, nil
}

func (w *Warehouse) estimateUncached(ctx context.Context, table string, grouping []string, agg estimate.Aggregate, aggCol string, confidence float64, noHybrid bool) ([]estimate.GroupEstimate, error) {
	start := time.Now()
	syn, q, cols, ci, err := w.estimatePlan(table, grouping, aggCol)
	if err != nil {
		return nil, err
	}
	// Hybrid path: when the synopsis's exact datacube covers this
	// (grouping, aggregate column) pair and is synchronized with the
	// base data, answer from the exact prefixes — every group comes back
	// with a zero-width interval and no sample scan at all.
	if !noHybrid {
		if parts, ok := syn.ExactPartials(cols, ci); ok {
			w.aq.Telemetry().HybridExact()
			ests, ferr := estimate.Finalize(parts, agg, confidence)
			if ferr == nil {
				w.aq.Telemetry().ObserveEstimate(time.Since(start))
			}
			return ests, ferr
		}
		w.aq.Telemetry().HybridFallback()
	}
	q.Agg = agg
	q.Confidence = confidence
	ests, err := estimate.RunCtx(ctx, syn.Sample(), q)
	if err == nil {
		w.aq.Telemetry().ObserveEstimate(time.Since(start))
	}
	return ests, err
}

// estimatePlan resolves a direct-estimation request against the
// warehouse: the table's synopsis plus an estimate.Query whose closures
// read the grouping ordinals and aggregate column resolved once, up
// front, and those resolved ordinals themselves (the hybrid path hands
// them to Synopsis.ExactPartials). Agg and Confidence are left zero for
// the caller to fill (a partials scan ignores them entirely).
func (w *Warehouse) estimatePlan(table string, grouping []string, aggCol string) (*aqua.Synopsis, estimate.Query, []int, int, error) {
	syn, ok := w.aq.Synopsis(table)
	if !ok {
		return nil, estimate.Query{}, nil, -1, fmt.Errorf("%w %q", ErrNoSynopsis, table)
	}
	rel, ok := w.cat.Lookup(table)
	if !ok {
		return nil, estimate.Query{}, nil, -1, fmt.Errorf("congress: synopsis for %q exists but its base relation is gone from the catalog", table)
	}
	// Validate the grouping columns against the schema up front, and
	// resolve their ordinals once — not per sampled row.
	g, err := core.NewGrouping(rel.Schema, grouping)
	if err != nil {
		return nil, estimate.Query{}, nil, -1, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	cols := g.Columns()
	ci := rel.Schema.Index(aggCol)
	if ci < 0 {
		return nil, estimate.Query{}, nil, -1, fmt.Errorf("%w: unknown aggregate column %q", ErrBadQuery, aggCol)
	}
	return syn, estimate.Query{
		GroupKey: func(row Row) string {
			parts := make([]string, 0, len(cols))
			for _, c := range cols {
				parts = append(parts, row[c].String())
			}
			return joinParts(parts)
		},
		Value: func(row Row) (float64, bool) {
			return row[ci].AsFloat()
		},
		// The value closure above is a bare column read, so the scan may
		// gather the column in batches instead of calling it per row.
		ValueIndex: &ci,
	}, cols, ci, nil
}

// GroupPartial re-exports the mergeable per-group estimation state a
// scatter-gather coordinator moves between shards; see
// EstimatePartialsCtx and estimate.MergePartials.
type GroupPartial = estimate.GroupPartial

// EstimatePartialsCtx runs the scan half of EstimateCtx and returns the
// per-group mergeable partials instead of finished estimates. A
// coordinator (ShardedWarehouse) calls this on every shard, merges with
// estimate.MergePartials, and takes the confidence interval exactly once
// with estimate.Finalize — which is why sharded estimates match
// single-warehouse ones over the same strata. Partials are aggregate-
// and confidence-independent. Error classification matches EstimateCtx
// (ErrBadQuery, ErrNoSynopsis).
func (w *Warehouse) EstimatePartialsCtx(ctx context.Context, table string, grouping []string, aggCol string) ([]GroupPartial, error) {
	return w.EstimatePartialsOpts(ctx, table, grouping, aggCol, PartialsOptions{})
}

// PartialsOptions tunes one EstimatePartialsOpts call.
type PartialsOptions struct {
	// NoHybrid forces the partials to come from the sample scan even
	// when the shard's exact datacube covers the request (see
	// ApproxOptions.NoHybrid).
	NoHybrid bool
}

// EstimatePartialsOpts is EstimatePartialsCtx with options. With hybrid
// answering enabled (the default), a shard whose exact datacube covers
// the request returns exact partials — ExactSum/ExactCount populated,
// zero sampled mass — and skips its sample scan; the coordinator's
// MergePartials then composes exact shards with sampled shards so only
// the residual (uncovered) mass contributes interval width.
func (w *Warehouse) EstimatePartialsOpts(ctx context.Context, table string, grouping []string, aggCol string, opts PartialsOptions) ([]GroupPartial, error) {
	start := time.Now()
	syn, q, cols, ci, err := w.estimatePlan(table, grouping, aggCol)
	if err != nil {
		return nil, err
	}
	if !opts.NoHybrid {
		if parts, ok := syn.ExactPartials(cols, ci); ok {
			w.aq.Telemetry().HybridExact()
			w.aq.Telemetry().ObserveEstimate(time.Since(start))
			return parts, nil
		}
		w.aq.Telemetry().HybridFallback()
	}
	parts, err := estimate.PartialsCtx(ctx, syn.Sample(), q)
	if err == nil {
		// Each scatter-gather leg counts as one estimate scan on its
		// shard, so the merged Metrics() reflect fan-out work.
		w.aq.Telemetry().ObserveEstimate(time.Since(start))
	}
	return parts, err
}

// EstimateKeySep separates the rendered grouping values inside a
// multi-column Estimate group key. It is the same unit separator the
// engine's composite group keys use (datacube.KeySep), which cannot
// occur in rendered values' natural text the way "/" can — so keys like
// ("a/b","c") and ("a","b/c") stay distinct.
//
// The separator is a reserved byte: grouping-column values containing
// U+001F are rejected by Table.Insert once a synopsis exists, and
// BuildSynopsis re-validates every existing row (covering rows inserted
// before the synopsis, and CSV or generator loads that bypass Insert),
// because a key built from such a value would be indistinguishable from
// a key over different values.
// joinParts and SplitEstimateKey round-trip under that contract,
// including the empty grouping (T = ∅, the House stratum), whose key is
// the empty string and splits back to zero values.
const EstimateKeySep = datacube.KeySep

// joinParts joins display values into an Estimate group key.
func joinParts(parts []string) string {
	return strings.Join(parts, EstimateKeySep)
}

// SplitEstimateKey splits a multi-column Estimate group key back into
// the rendered per-column values. The empty key — produced by the empty
// grouping — splits to an empty, non-nil slice, so len(SplitEstimateKey(
// joinParts(parts))) == len(parts) holds for every valid parts.
func SplitEstimateKey(key string) []string {
	if key == "" {
		return []string{}
	}
	return strings.Split(key, EstimateKeySep)
}

// Aggregate re-exports the direct-estimation aggregate selector.
type Aggregate = estimate.Aggregate

// GroupEstimate re-exports the direct-estimation result row.
type GroupEstimate = estimate.GroupEstimate

// Direct-estimation aggregates.
const (
	Sum   = estimate.Sum
	Count = estimate.Count
	Avg   = estimate.Avg
)

// MetricsSnapshot is a point-in-time reading of the warehouse's
// operational counters; see Warehouse.Metrics.
type MetricsSnapshot = metrics.TelemetrySnapshot

// Metrics reports the warehouse's operational counters: rows scanned by
// synopsis construction, strata materialized, build/refresh/answer/
// estimate counts and latencies, and the incremental-maintainer feed
// depth. Safe to call concurrently with any other operation.
func (w *Warehouse) Metrics() MetricsSnapshot {
	return w.aq.Telemetry().Snapshot()
}

// Typed sentinel errors, re-exported from the aqua middleware so callers
// of the public API can classify failures with errors.Is: ErrBadQuery is
// a malformed or unsupported query (a client error), ErrNoSynopsis and
// ErrUnknownTable are missing-resource errors.
var (
	ErrBadQuery     = aqua.ErrBadQuery
	ErrNoSynopsis   = aqua.ErrNoSynopsis
	ErrUnknownTable = aqua.ErrUnknownTable
)

// SynopsisInfo summarizes one registered synopsis for listings (the
// congressd /v1/synopses endpoint, diagnostics).
type SynopsisInfo struct {
	// Table is the base relation the synopsis covers.
	Table string
	// GroupBy is the grouping attribute set G.
	GroupBy []string
	// Strategy names the allocation strategy.
	Strategy string
	// Space is the configured budget X in tuples.
	Space int
	// SampleSize is the number of tuples currently materialized.
	SampleSize int
	// Strata is the number of finest groups in the sample.
	Strata int
	// PendingInserts counts maintainer inserts not yet surfaced by a
	// refresh.
	PendingInserts int64
	// Shards is the number of shards holding a partition of this synopsis
	// (0 for an unsharded warehouse).
	Shards int
}

// Synopses lists every registered synopsis, sorted by table name so the
// output is deterministic.
func (w *Warehouse) Synopses() []SynopsisInfo {
	syns := w.aq.Synopses()
	out := make([]SynopsisInfo, 0, len(syns))
	for _, s := range syns {
		st := s.Sample()
		out = append(out, SynopsisInfo{
			Table:          s.Table(),
			GroupBy:        s.GroupCols(),
			Strategy:       s.Strategy().String(),
			Space:          s.Space(),
			SampleSize:     st.Size(),
			Strata:         st.NumStrata(),
			PendingInserts: s.Pending(),
		})
	}
	return out
}

// ParseStrategy resolves an allocation-strategy name
// (house|senate|basic|congress, case-insensitive) for CLI flags and API
// requests.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "house":
		return House, nil
	case "senate":
		return Senate, nil
	case "basic", "basiccongress", "basic-congress":
		return BasicCongress, nil
	case "congress", "":
		return Congress, nil
	default:
		return 0, fmt.Errorf("%w: unknown allocation strategy %q", ErrBadQuery, s)
	}
}

// ParseRewriteStrategy resolves a rewrite-strategy name
// (integrated|nested|normalized|keynormalized, case-insensitive) for CLI
// flags and API requests.
func ParseRewriteStrategy(s string) (RewriteStrategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "integrated", "":
		return Integrated, nil
	case "nested", "nestedintegrated", "nested-integrated":
		return NestedIntegrated, nil
	case "normalized":
		return Normalized, nil
	case "keynormalized", "key-normalized":
		return KeyNormalized, nil
	default:
		return 0, fmt.Errorf("%w: unknown rewrite strategy %q", ErrBadQuery, s)
	}
}

// NewRand builds a deterministic random source, convenience for
// examples and tools.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
