package congress

import (
	"sync"
	"testing"
)

// TestConcurrentInsertApproxRefresh exercises the concurrency contract
// of Warehouse: Insert, Approx, Estimate, RefreshSynopsis, and
// AllocationTable may all run concurrently against one warehouse. Run
// with -race; the seed code's unguarded maintainer and synopsis state
// race here.
func TestConcurrentInsertApproxRefresh(t *testing.T) {
	w, tbl := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 600, Seed: 9,
	}); err != nil {
		t.Fatal(err)
	}

	const (
		inserters    = 4
		insertsEach  = 800
		readers      = 3
		queriesEach  = 60
		refreshes    = 40
		estimateEach = 60
	)
	regions := []string{"east", "west", "tiny", "north", "south"}

	var wg sync.WaitGroup
	errCh := make(chan error, inserters+readers*2+1)

	for i := 0; i < inserters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < insertsEach; j++ {
				r := regions[(i+j)%len(regions)]
				if err := tbl.Insert(Str(r), Str("pen"), F(float64(j%50))); err != nil {
					errCh <- err
					return
				}
			}
		}(i)
	}

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < queriesEach; j++ {
				if _, err := w.Approx(`select region, sum(amount) from sales group by region`); err != nil {
					errCh <- err
					return
				}
				if _, err := w.AllocationTable("sales"); err != nil {
					errCh <- err
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < estimateEach; j++ {
				if _, err := w.Estimate("sales", []string{"region"}, Sum, "amount", 0.9); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < refreshes; j++ {
			if err := w.RefreshSynopsis("sales"); err != nil {
				errCh <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// After the dust settles the warehouse must still be coherent.
	if err := w.RefreshSynopsis("sales"); err != nil {
		t.Fatal(err)
	}
	res, err := w.Approx(`select region, count(*) from sales group by region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no groups after concurrent run")
	}
	if got := tbl.NumRows(); got != 10000+inserters*insertsEach {
		t.Fatalf("row count %d, want %d", got, 10000+inserters*insertsEach)
	}
}

// TestConcurrentBuildAndQueryDistinctTables: synopsis construction on
// one table must not race with traffic against another.
func TestConcurrentBuildAndQueryDistinctTables(t *testing.T) {
	w, _ := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region"}, Space: 300, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	other, err := w.CreateTable("returns", Col("region", String), Col("amount", Float))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := other.Insert(Str("east"), F(float64(i%7))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.BuildSynopsis(SynopsisSpec{
			Table: "returns", GroupBy: []string{"region"}, Space: 100,
			Seed: 2, BuildWorkers: 4,
		}); err != nil {
			errCh <- err
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			if _, err := w.Approx(`select region, sum(amount) from sales group by region`); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if _, err := w.Approx(`select region, count(*) from returns group by region`); err != nil {
		t.Fatal(err)
	}
}
