package congress

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// noTriggers disables the background snapshotter so tests control
// exactly when snapshots happen.
var noTriggers = PersistOptions{
	Fsync:            FsyncNone,
	SnapshotInterval: -1,
	SnapshotEvery:    -1,
}

// buildDurableSales populates a durable warehouse at dir with the
// standard skewed sales data plus a synopsis.
func buildDurableSales(t *testing.T, dir string) *Warehouse {
	t.Helper()
	w, _, err := OpenDir(dir, noTriggers)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := w.CreateTable("sales",
		Col("region", String), Col("product", String), Col("amount", Float))
	if err != nil {
		t.Fatal(err)
	}
	insert := func(region, product string, n int, base float64) {
		for i := 0; i < n; i++ {
			if err := tbl.Insert(Str(region), Str(product), F(base+float64(i%10))); err != nil {
				t.Fatal(err)
			}
		}
	}
	insert("east", "pen", 2000, 10)
	insert("west", "pen", 600, 12)
	insert("tiny", "pen", 20, 100)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 400,
		Strategy: Congress, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSaveOpenDirAllocationIdentical(t *testing.T) {
	w, _ := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region", "product"}, Space: 800,
		Strategy: Congress, Seed: 5,
	}); err != nil {
		t.Fatal(err)
	}
	before, err := w.AllocationTable("sales")
	if err != nil {
		t.Fatal(err)
	}
	exactBefore, err := w.Query(`select region, sum(amount) from sales group by region order by region`)
	if err != nil {
		t.Fatal(err)
	}
	approxBefore, err := w.Approx(`select region, sum(amount) from sales group by region order by region`)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := w.Save(dir); err != nil {
		t.Fatal(err)
	}
	w2, stats, err := OpenDir(dir, noTriggers)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !stats.SnapshotLoaded || stats.ReplayedRecords != 0 {
		t.Fatalf("stats %+v, want a snapshot load with no replay", stats)
	}

	after, err := w2.AllocationTable("sales")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("allocation table changed across save/restore:\nbefore %+v\nafter  %+v", before, after)
	}
	exactAfter, err := w2.Query(`select region, sum(amount) from sales group by region order by region`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exactBefore.Rows, exactAfter.Rows) {
		t.Fatal("exact answers differ after restore")
	}
	// The restored sample relations hold the same rows, so the same
	// approximate answer comes back.
	approxAfter, err := w2.Approx(`select region, sum(amount) from sales group by region order by region`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(approxBefore.Rows, approxAfter.Rows) {
		t.Fatalf("approx answers differ after restore:\nbefore %v\nafter  %v", approxBefore.Rows, approxAfter.Rows)
	}
}

func TestRestoreAdvancesEpochs(t *testing.T) {
	w, _ := buildSalesWarehouse(t)
	if err := w.BuildSynopsis(SynopsisSpec{
		Table: "sales", GroupBy: []string{"region"}, Space: 300, Seed: 2,
	}); err != nil {
		t.Fatal(err)
	}
	states, err := w.aq.ExportStates()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := w.Save(dir); err != nil {
		t.Fatal(err)
	}
	w2, _, err := OpenDir(dir, noTriggers)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	restored, err := w2.aq.ExportStates()
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(states) {
		t.Fatalf("synopsis count %d vs %d", len(restored), len(states))
	}
	for i := range states {
		if restored[i].Epoch <= states[i].Epoch {
			t.Errorf("synopsis %d epoch %d did not advance past persisted %d",
				i, restored[i].Epoch, states[i].Epoch)
		}
	}
}

func TestOpenDirReplaysWALSuffix(t *testing.T) {
	dir := t.TempDir()
	w := buildDurableSales(t, dir)
	// The build forced nothing durable beyond the WAL yet; add rows that
	// only the log carries, then "crash" by not closing.
	tbl, err := w.Table("sales")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tbl.Insert(Str("late"), Str("ink"), F(5)); err != nil {
			t.Fatal(err)
		}
	}
	wantRows := tbl.NumRows()

	w2, stats, err := OpenDir(dir, noTriggers)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if stats.ReplayedRecords == 0 {
		t.Fatalf("stats %+v: expected WAL replay after a crash without close", stats)
	}
	tbl2, err := w2.Table("sales")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.NumRows() != wantRows {
		t.Fatalf("recovered %d rows, want %d", tbl2.NumRows(), wantRows)
	}
	// Populations per group (deterministic counts, unlike sample draws)
	// must match the pre-crash warehouse.
	wantPop := map[string]int64{}
	before, err := w.AllocationTable("sales")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range before {
		wantPop[fmt.Sprint(r.Group)] = r.Population
	}
	after, err := w2.AllocationTable("sales")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range after {
		if wantPop[fmt.Sprint(r.Group)] != r.Population {
			t.Errorf("group %v population %d, want %d", r.Group, r.Population, wantPop[fmt.Sprint(r.Group)])
		}
	}
	if _, err := w2.Approx(`select region, count(*) from sales group by region`); err != nil {
		t.Fatalf("approx on recovered warehouse: %v", err)
	}
}

func TestOpenDirTruncatesTornWALTail(t *testing.T) {
	dir := t.TempDir()
	w := buildDurableSales(t, dir)
	tbl, _ := w.Table("sales")
	for i := 0; i < 20; i++ {
		if err := tbl.Insert(Str("torn"), Str("pen"), F(1)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash, then tear the newest WAL segment: cut mid-frame as an
	// interrupted append would.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for _, e := range entries {
		if len(e.Name()) > 4 && e.Name()[:4] == "wal-" && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		t.Fatal("no WAL segment found")
	}
	path := filepath.Join(dir, newest)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	w2, stats, err := OpenDir(dir, noTriggers)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer w2.Close()
	if stats.TruncatedBytes == 0 {
		t.Fatalf("stats %+v: torn tail not reported", stats)
	}
	tbl2, err := w2.Table("sales")
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one insert (the torn final frame) is lost.
	if want := tbl.NumRows() - 1; tbl2.NumRows() != want {
		t.Fatalf("recovered %d rows, want %d (one torn record lost)", tbl2.NumRows(), want)
	}
}

func TestOpenDirSkipsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	w := buildDurableSales(t, dir)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot; recovery must fall back to an older
	// valid one and still come up.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for _, e := range entries {
		if len(e.Name()) > 5 && e.Name()[:5] == "snap-" && e.Name() > newest {
			newest = e.Name()
		}
	}
	path := filepath.Join(dir, newest)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x80
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, stats, err := OpenDir(dir, noTriggers)
	if err != nil {
		t.Fatalf("open with corrupt snapshot: %v", err)
	}
	defer w2.Close()
	if stats.SkippedSnapshots == 0 {
		t.Fatalf("stats %+v: corrupt snapshot not counted", stats)
	}
	tbl, err := w2.Table("sales")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() == 0 {
		t.Fatal("fallback recovery lost the table")
	}
}

func TestOpenDirTwiceIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	w := buildDurableSales(t, dir)
	tbl, _ := w.Table("sales")
	wantRows := tbl.NumRows()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		w2, _, err := OpenDir(dir, noTriggers)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		tbl2, err := w2.Table("sales")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if tbl2.NumRows() != wantRows {
			t.Fatalf("round %d: %d rows, want %d", round, tbl2.NumRows(), wantRows)
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("round %d close: %v", round, err)
		}
	}
}

func TestEnablePersistenceTwiceFails(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenDir(dir, noTriggers)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.EnablePersistence(dir, noTriggers); err == nil {
		t.Fatal("second EnablePersistence succeeded")
	}
	if _, ok := w.PersistStats(); !ok {
		t.Fatal("PersistStats reports persistence off")
	}
}

func TestTriggerSnapshotCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	w := buildDurableSales(t, dir)
	defer w.Close()
	before, ok := w.PersistStats()
	if !ok {
		t.Fatal("persistence off")
	}
	if before.InsertsSinceSnapshot == 0 {
		t.Fatal("no logged inserts before the snapshot")
	}
	if err := w.TriggerSnapshot(); err != nil {
		t.Fatal(err)
	}
	after, _ := w.PersistStats()
	if after.Generation <= before.Generation {
		t.Fatalf("generation %d did not advance past %d", after.Generation, before.Generation)
	}
	if after.InsertsSinceSnapshot != 0 {
		t.Fatalf("%d inserts still pending after snapshot", after.InsertsSinceSnapshot)
	}
}

func TestTriggerSnapshotWithoutPersistenceFails(t *testing.T) {
	w := Open()
	if err := w.TriggerSnapshot(); err == nil {
		t.Fatal("snapshot on a non-persistent warehouse succeeded")
	}
	if _, ok := w.PersistStats(); ok {
		t.Fatal("PersistStats reports persistence on")
	}
}
