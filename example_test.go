package congress_test

import (
	"fmt"
	"log"

	congress "github.com/approxdb/congress"
)

// loadExampleWarehouse builds a deterministic skewed sales table.
func loadExampleWarehouse() *congress.Warehouse {
	w := congress.Open()
	tbl, err := w.CreateTable("sales",
		congress.Col("region", congress.String),
		congress.Col("amount", congress.Float),
	)
	if err != nil {
		log.Fatal(err)
	}
	load := func(region string, n int, amount float64) {
		for i := 0; i < n; i++ {
			if err := tbl.Insert(congress.Str(region), congress.F(amount)); err != nil {
				log.Fatal(err)
			}
		}
	}
	load("east", 9000, 10)
	load("west", 900, 20)
	load("north", 100, 30)
	return w
}

// Example demonstrates the core flow: build a congressional sample,
// then compare an exact and an approximate group-by answer.
func Example() {
	w := loadExampleWarehouse()
	if err := w.BuildSynopsis(congress.SynopsisSpec{
		Table:   "sales",
		GroupBy: []string{"region"},
		Space:   300,
		Seed:    1,
	}); err != nil {
		log.Fatal(err)
	}

	exact, _ := w.Query(`select region, sum(amount) from sales group by region order by region`)
	approx, _ := w.Approx(`select region, sum(amount) from sales group by region order by region`)
	for i, row := range exact.Rows {
		ev, _ := row[1].AsFloat()
		av, _ := approx.Rows[i][1].AsFloat()
		// With constant per-region amounts, within-group variance is
		// zero, so the stratified estimate is exact.
		fmt.Printf("%s exact=%.0f approx=%.0f\n", row[0], ev, av)
	}
	// Output:
	// east exact=90000 approx=90000
	// north exact=3000 approx=3000
	// west exact=18000 approx=18000
}

// ExampleWarehouse_Explain shows the rewritten SQL a strategy executes.
func ExampleWarehouse_Explain() {
	w := loadExampleWarehouse()
	if err := w.BuildSynopsis(congress.SynopsisSpec{
		Table: "sales", GroupBy: []string{"region"}, Space: 100, Seed: 1,
	}); err != nil {
		log.Fatal(err)
	}
	sqlText, _ := w.Explain(`select region, sum(amount) from sales group by region`, congress.Integrated)
	fmt.Println(sqlText)
	// Output:
	// SELECT region, SUM((amount * sf)) FROM cs_sales GROUP BY region
}

// ExampleWarehouse_Estimate uses the direct estimation path with
// confidence bounds instead of SQL.
func ExampleWarehouse_Estimate() {
	w := loadExampleWarehouse()
	if err := w.BuildSynopsis(congress.SynopsisSpec{
		Table: "sales", GroupBy: []string{"region"}, Space: 300, Seed: 1,
	}); err != nil {
		log.Fatal(err)
	}
	ests, _ := w.Estimate("sales", []string{"region"}, congress.Count, "amount", 0.95)
	for _, e := range ests {
		fmt.Printf("%s count=%.0f\n", e.Key, e.Value)
	}
	// Output:
	// east count=9000
	// north count=100
	// west count=900
}
