module github.com/approxdb/congress

go 1.22
