// Warehouse: an OLAP drill-down session on a TPC-D-style lineitem
// table. The analyst starts with a grand total, rolls down to coarse
// groups, then to the finest grouping — the query pattern congressional
// samples are designed for. Each step is answered from one 5%
// congressional sample and compared against the exact answer; the same
// steps are also answered from a uniform (House) sample to show where
// it falls apart.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/approxdb/congress/internal/aqua"
	"github.com/approxdb/congress/internal/core"
	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/metrics"
	"github.com/approxdb/congress/internal/tpcd"
)

func main() {
	const rows = 300_000
	fmt.Printf("generating %d-row lineitem (1000 groups, z=1.2)...\n", rows)
	rel, err := tpcd.Generate(tpcd.Params{
		TableSize: rows, NumGroups: 1000, GroupSkew: 1.2, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	session := []struct {
		title     string
		query     string
		groupCols int
	}{
		{"grand total", `select sum(l_quantity) from lineitem`, 0},
		{"roll-down to return flag", `select l_returnflag, sum(l_quantity) from lineitem group by l_returnflag order by l_returnflag`, 1},
		{"drill to flag x status", `select l_returnflag, l_linestatus, sum(l_quantity) from lineitem group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus`, 2},
		{"finest: flag x status x shipdate", `select l_returnflag, l_linestatus, l_shipdate, sum(l_quantity) from lineitem group by l_returnflag, l_linestatus, l_shipdate order by l_returnflag, l_linestatus, l_shipdate`, 3},
	}

	for _, strategy := range []core.Strategy{core.Congress, core.House} {
		cat := engine.NewCatalog()
		cat.Register(rel)
		a := aqua.New(cat)
		if _, err := a.CreateSynopsis(aqua.Config{
			Table:     "lineitem",
			GroupCols: tpcd.GroupingAttrs,
			Strategy:  strategy,
			Space:     rows / 20, // 5%
			Seed:      11,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- drill-down with a 5%% %s sample ---\n", strategy)
		for _, step := range session {
			exactStart := time.Now()
			exact, err := a.Exact(step.query)
			if err != nil {
				log.Fatal(err)
			}
			exactTime := time.Since(exactStart)

			approxStart := time.Now()
			approx, err := a.Answer(step.query)
			if err != nil {
				log.Fatal(err)
			}
			approxTime := time.Since(approxStart)

			agg := step.groupCols
			ge, err := metrics.CompareAnswers(exact, approx, step.groupCols, agg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-34s %4d groups  mean err %7.2f%%  max %8.2f%%  missing %3d  (%v -> %v, %.0fx)\n",
				step.title, len(exact.Rows), ge.L1(), ge.LInf(), ge.MissingGroups,
				exactTime.Round(time.Millisecond), approxTime.Round(time.Millisecond),
				float64(exactTime)/float64(approxTime))
		}
	}
	fmt.Println("\nNote how House matches Congress on the grand total but degrades sharply")
	fmt.Println("(and drops groups entirely) at the finest grouping, while Congress stays usable.")
}
