// Starschema: join synopses (paper Section 2). A warehouse star schema
// has a fact table (orders) and dimension tables (customers, products).
// Group-by attributes the analyst cares about — customer nation,
// product category — live on the dimensions. A join synopsis
// materializes the foreign-key join once and builds a congressional
// sample over it, so multi-table group-by queries are answered from a
// single sample relation.
package main

import (
	"fmt"
	"log"
	"math"

	congress "github.com/approxdb/congress"
)

func main() {
	w := congress.Open()

	// Dimensions.
	customers, err := w.CreateTable("customers",
		congress.Col("c_id", congress.Int),
		congress.Col("nation", congress.String),
	)
	if err != nil {
		log.Fatal(err)
	}
	nations := []string{"US", "US", "US", "US", "DE", "DE", "JP", "BR"}
	for i, n := range nations {
		if err := customers.Insert(congress.I(int64(i)), congress.Str(n)); err != nil {
			log.Fatal(err)
		}
	}

	products, err := w.CreateTable("products",
		congress.Col("p_id", congress.Int),
		congress.Col("category", congress.String),
	)
	if err != nil {
		log.Fatal(err)
	}
	categories := []string{"toys", "tools", "toys", "garden"}
	for i, c := range categories {
		if err := products.Insert(congress.I(int64(i)), congress.Str(c)); err != nil {
			log.Fatal(err)
		}
	}

	// Fact table: orders skewed toward US customers and toys.
	orders, err := w.CreateTable("orders",
		congress.Col("o_id", congress.Int),
		congress.Col("cust", congress.Int),
		congress.Col("prod", congress.Int),
		congress.Col("amount", congress.Float),
	)
	if err != nil {
		log.Fatal(err)
	}
	rng := congress.NewRand(31)
	for i := 0; i < 120000; i++ {
		c := rng.Intn(len(nations))
		if rng.Intn(3) > 0 {
			c = rng.Intn(4) // bias toward US customers
		}
		p := rng.Intn(len(categories))
		if err := orders.Insert(
			congress.I(int64(i)),
			congress.I(int64(c)),
			congress.I(int64(p)),
			congress.F(5+rng.Float64()*95),
		); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("star schema loaded: %d orders, %d customers, %d products\n\n",
		orders.NumRows(), customers.NumRows(), products.NumRows())

	// One join synopsis serves every grouping over {nation, category}.
	if err := w.BuildJoinSynopsis(
		congress.JoinSpec{
			Name: "orders_wide",
			Fact: "orders",
			Dims: []congress.DimJoin{
				{Table: "customers", FactKey: "cust", DimKey: "c_id"},
				{Table: "products", FactKey: "prod", DimKey: "p_id"},
			},
		},
		congress.SynopsisSpec{
			GroupBy: []string{"nation", "category"},
			Space:   2400, // 2% of the join
			Seed:    5,
		},
	); err != nil {
		log.Fatal(err)
	}

	// The analyst's multi-table query, now a single-table query on the
	// wide relation.
	q := `select nation, category, sum(amount) from orders_wide group by nation, category order by nation, category`
	exact, err := w.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := w.Approx(q)
	if err != nil {
		log.Fatal(err)
	}
	got := map[string]float64{}
	for _, row := range approx.Rows {
		v, _ := row[2].AsFloat()
		got[row[0].S+"/"+row[1].S] = v
	}
	fmt.Println("revenue by nation x category (2% join synopsis):")
	fmt.Printf("%-8s %-8s %14s %14s %8s\n", "nation", "category", "exact", "approx", "err")
	for _, row := range exact.Rows {
		key := row[0].S + "/" + row[1].S
		ev, _ := row[2].AsFloat()
		av := got[key]
		fmt.Printf("%-8s %-8s %14.0f %14.0f %7.2f%%\n",
			row[0].S, row[1].S, ev, av, math.Abs(ev-av)/ev*100)
	}
	fmt.Println("\nEvery nation x category cell is present — including the rare")
	fmt.Println("BR/garden combination a uniform sample would likely miss.")
}
