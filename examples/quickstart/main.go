// Quickstart: build a congressional sample over a skewed sales table
// and answer group-by queries approximately, comparing against exact
// answers.
package main

import (
	"fmt"
	"log"

	congress "github.com/approxdb/congress"
)

func main() {
	w := congress.Open()

	tbl, err := w.CreateTable("sales",
		congress.Col("region", congress.String),
		congress.Col("product", congress.String),
		congress.Col("amount", congress.Float),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Load a deliberately skewed dataset: "east" has 50x the rows of
	// "north".
	rng := congress.NewRand(42)
	load := func(region, product string, n int, base float64) {
		for i := 0; i < n; i++ {
			if err := tbl.Insert(
				congress.Str(region),
				congress.Str(product),
				congress.F(base+rng.Float64()*10),
			); err != nil {
				log.Fatal(err)
			}
		}
	}
	load("east", "pen", 50000, 10)
	load("east", "ink", 30000, 40)
	load("west", "pen", 15000, 12)
	load("west", "ink", 4000, 45)
	load("north", "pen", 1000, 15)

	// Precompute a 1% congressional sample serving every grouping of
	// {region, product}.
	if err := w.BuildSynopsis(congress.SynopsisSpec{
		Table:   "sales",
		GroupBy: []string{"region", "product"},
		Space:   1000,
		Seed:    7,
	}); err != nil {
		log.Fatal(err)
	}

	for _, q := range []string{
		`select sum(amount) from sales`,
		`select region, sum(amount) from sales group by region order by region`,
		`select region, product, avg(amount) from sales group by region, product order by region, product`,
	} {
		exact, err := w.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		approx, err := w.Approx(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query: %s\nexact:\n%sapprox (1%% congressional sample):\n%s\n", q, exact, approx)
	}

	// Show the SQL the middleware actually executed.
	sqlText, err := w.Explain(`select region, sum(amount) from sales group by region`, congress.Integrated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rewritten query:", sqlText)
}
