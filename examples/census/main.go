// Census: the paper's Section 1 motivating example. A census table
// holds one row per person with state, gender, and income; state
// populations differ by a factor of ~70 (California vs Wyoming). A
// uniform sample answers "average income per state" terribly for small
// states; a congressional sample answers it well for every state while
// staying accurate for the no-group-by national average.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	congress "github.com/approxdb/congress"
)

// statePop is a stylized population table (thousands of rows to keep
// the example fast; relative sizes mirror reality).
var statePop = map[string]int{
	"CA": 70000, "TX": 52000, "NY": 39000, "FL": 38000, "IL": 25000,
	"PA": 25000, "OH": 23000, "MI": 20000, "GA": 17000, "NC": 15000,
	"MT": 1900, "DE": 1500, "SD": 1400, "ND": 1300, "AK": 1200,
	"VT": 1100, "WY": 1000,
}

func main() {
	w := congress.Open()
	tbl, err := w.CreateTable("census",
		congress.Col("st", congress.String),
		congress.Col("gen", congress.String),
		congress.Col("sal", congress.Float),
	)
	if err != nil {
		log.Fatal(err)
	}

	rng := congress.NewRand(2000)
	states := make([]string, 0, len(statePop))
	for st := range statePop {
		states = append(states, st)
	}
	sort.Strings(states)

	exactAvg := map[string]float64{}
	for _, st := range states {
		var sum float64
		n := statePop[st]
		// Give each state its own mean income so errors are visible.
		base := 30000 + float64(len(st)*3000) + rng.Float64()*20000
		for i := 0; i < n; i++ {
			gen := "F"
			if rng.Intn(2) == 0 {
				gen = "M"
			}
			sal := base + rng.NormFloat64()*8000
			if sal < 1000 {
				sal = 1000
			}
			sum += sal
			if err := tbl.Insert(congress.Str(st), congress.Str(gen), congress.F(sal)); err != nil {
				log.Fatal(err)
			}
		}
		exactAvg[st] = sum / float64(n)
	}
	fmt.Printf("census loaded: %d rows across %d states\n\n", tbl.NumRows(), len(states))

	// Build one synopsis per strategy on separate warehouses sharing the
	// data? Simpler: rebuild the synopsis in place per strategy.
	const space = 3400 // ~1% of the table
	run := func(strategy congress.Strategy, label string) {
		if err := w.BuildSynopsis(congress.SynopsisSpec{
			Table:    "census",
			GroupBy:  []string{"st", "gen"},
			Space:    space,
			Strategy: strategy,
			Seed:     9,
		}); err != nil {
			log.Fatal(err)
		}
		res, err := w.Approx(`select st, avg(sal) from census group by st order by st`)
		if err != nil {
			log.Fatal(err)
		}
		var worstState string
		var worst, mean float64
		got := map[string]float64{}
		for _, row := range res.Rows {
			v, _ := row[1].AsFloat()
			got[row[0].S] = v
		}
		for _, st := range states {
			est, ok := got[st]
			e := 100.0
			if ok {
				e = math.Abs(est-exactAvg[st]) / exactAvg[st] * 100
			}
			mean += e
			if e > worst {
				worst = e
				worstState = st
			}
		}
		mean /= float64(len(states))
		fmt.Printf("%-22s mean error %6.2f%%   worst %6.2f%% (%s, pop %d)\n",
			label, mean, worst, worstState, statePop[worstState])
	}

	fmt.Println("avg income per state from a ~1% sample:")
	run(congress.House, "House (uniform)")
	run(congress.Senate, "Senate")
	run(congress.BasicCongress, "Basic Congress")
	run(congress.Congress, "Congress")

	// National average (no group-by) from the final Congress synopsis.
	exact, _ := w.Query(`select avg(sal) from census`)
	approx, _ := w.Approx(`select avg(sal) from census`)
	ev, _ := exact.Rows[0][0].AsFloat()
	av, _ := approx.Rows[0][0].AsFloat()
	fmt.Printf("\nnational avg income: exact %.0f, congress estimate %.0f (%.2f%% error)\n",
		ev, av, math.Abs(ev-av)/ev*100)
}
