// Streaming: the Section 6 story. A warehouse receives a continuous
// insert stream whose group distribution drifts — a new product launches
// mid-stream and an old one fades. The congressional sample is
// maintained incrementally, never re-reading the base table, and is
// periodically refreshed into query-servable relations. The example
// reports small-group accuracy at each checkpoint.
package main

import (
	"fmt"
	"log"
	"math"

	congress "github.com/approxdb/congress"
)

func main() {
	w := congress.Open()
	tbl, err := w.CreateTable("orders",
		congress.Col("product", congress.String),
		congress.Col("channel", congress.String),
		congress.Col("amount", congress.Float),
	)
	if err != nil {
		log.Fatal(err)
	}

	rng := congress.NewRand(77)

	// Seed the table with the "old world": two established products.
	seed := func(product string, n int) {
		for i := 0; i < n; i++ {
			ch := "web"
			if rng.Intn(3) == 0 {
				ch = "store"
			}
			if err := tbl.Insert(congress.Str(product), congress.Str(ch), congress.F(20+rng.Float64()*10)); err != nil {
				log.Fatal(err)
			}
		}
	}
	seed("classic", 40000)
	seed("standard", 20000)

	if err := w.BuildSynopsis(congress.SynopsisSpec{
		Table:   "orders",
		GroupBy: []string{"product", "channel"},
		Space:   1200, // 2% of the initial table
		Seed:    5,
	}); err != nil {
		log.Fatal(err)
	}
	// From here on, every tbl.Insert also feeds the synopsis's
	// incremental maintainer.

	report := func(phase string) {
		exact, err := w.Query(`select product, count(*) from orders group by product order by product`)
		if err != nil {
			log.Fatal(err)
		}
		approx, err := w.Approx(`select product, count(*) from orders group by product order by product`)
		if err != nil {
			log.Fatal(err)
		}
		got := map[string]float64{}
		for _, row := range approx.Rows {
			v, _ := row[1].AsFloat()
			got[row[0].S] = v
		}
		fmt.Printf("\n[%s] per-product order counts (exact vs maintained sample):\n", phase)
		for _, row := range exact.Rows {
			name := row[0].S
			ev, _ := row[1].AsFloat()
			av, ok := got[name]
			if !ok {
				fmt.Printf("  %-10s exact %8.0f   MISSING from approximate answer\n", name, ev)
				continue
			}
			fmt.Printf("  %-10s exact %8.0f   approx %8.0f   (%.1f%% error)\n",
				name, ev, av, math.Abs(ev-av)/ev*100)
		}
	}

	report("initial build")

	// Phase 2: a new product launches small — only 600 orders among
	// 30600 new rows. The maintainer must catch it.
	fmt.Println("\nstreaming 30600 inserts: 'launch' appears (600 rows), 'classic' keeps selling...")
	for i := 0; i < 30000; i++ {
		if err := tbl.Insert(congress.Str("classic"), congress.Str("web"), congress.F(25)); err != nil {
			log.Fatal(err)
		}
		if i%50 == 0 {
			if err := tbl.Insert(congress.Str("launch"), congress.Str("web"), congress.F(99)); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := w.RefreshSynopsis("orders"); err != nil {
		log.Fatal(err)
	}
	report("after drift + refresh")

	fmt.Println("\nThe maintained sample was rebuilt from the insert stream alone —")
	fmt.Println("the base table was never re-scanned (Section 6's requirement).")
}
