package congress

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/approxdb/congress/internal/engine"
	"github.com/approxdb/congress/internal/persist"
)

// FsyncMode selects the WAL durability policy for persistent
// warehouses.
type FsyncMode = persist.SyncMode

// Fsync modes for PersistOptions (the congressd -fsync flag).
const (
	// FsyncAlways fsyncs before acknowledging every insert, batching
	// concurrent writers into one fsync.
	FsyncAlways = persist.SyncAlways
	// FsyncInterval fsyncs on a timer; a machine crash can lose up to
	// one interval of acknowledged writes.
	FsyncInterval = persist.SyncInterval
	// FsyncNone never fsyncs outside shutdown; acknowledged writes
	// survive process crashes but not machine crashes.
	FsyncNone = persist.SyncNone
)

// ParseFsyncMode resolves a -fsync flag value
// (always|interval|none, empty means always).
func ParseFsyncMode(s string) (FsyncMode, error) { return persist.ParseSyncMode(s) }

// PersistOptions configures warehouse durability.
type PersistOptions struct {
	// Fsync is the WAL durability policy (default FsyncAlways).
	Fsync FsyncMode
	// FsyncInterval is the fsync period under FsyncInterval
	// (default 50ms).
	FsyncInterval time.Duration
	// SnapshotInterval triggers a background snapshot this often
	// (default 5m; negative disables the timer).
	SnapshotInterval time.Duration
	// SnapshotEvery triggers a background snapshot after this many
	// inserts (default 100000; negative disables).
	SnapshotEvery int64
}

// RecoveryStats reports what OpenDir found and replayed.
type RecoveryStats struct {
	// SnapshotLoaded reports whether a valid snapshot was restored.
	SnapshotLoaded bool
	// SkippedSnapshots counts corrupt snapshots passed over for an
	// older valid one.
	SkippedSnapshots int
	// ReplayedRecords is the number of WAL records replayed.
	ReplayedRecords int
	// TruncatedBytes is how many torn WAL tail bytes were cut.
	TruncatedBytes int64
	// Elapsed is the total recovery wall time.
	Elapsed time.Duration
}

// OpenDir opens a durable warehouse backed by dir: it loads the newest
// valid snapshot, truncates any torn WAL tail, replays the remaining
// log through the normal insert and DDL paths, writes a fresh recovery
// snapshot, and continues logging. A missing or empty dir opens an
// empty durable warehouse.
//
// Every restored synopsis's epoch is strictly above its persisted one,
// so answers cached against pre-recovery state can never be served.
// Sampling randomness is reseeded on restore; the restored samples are
// identical, and future sampling follows the same distribution (RNG
// internals are deliberately not persisted).
func OpenDir(dir string, opts PersistOptions) (*Warehouse, RecoveryStats, error) {
	start := time.Now()
	w := Open()
	info, err := persist.Recover(dir)
	if err != nil {
		return nil, RecoveryStats{}, err
	}
	stats := RecoveryStats{
		SnapshotLoaded:   info.Snapshot != nil,
		SkippedSnapshots: info.SkippedSnapshots,
		ReplayedRecords:  len(info.Records),
		TruncatedBytes:   info.TruncatedBytes,
	}
	if info.Snapshot != nil {
		if err := w.restoreState(info.Snapshot); err != nil {
			return nil, stats, err
		}
	}
	for i, rec := range info.Records {
		if err := w.applyRecord(rec); err != nil {
			return nil, stats, fmt.Errorf("congress: replaying WAL record %d: %w", i, err)
		}
	}
	stats.Elapsed = time.Since(start)
	w.aq.Telemetry().ObserveRecovery(stats.Elapsed, int64(len(info.Records)), info.TruncatedBytes)
	if err := w.EnablePersistence(dir, opts); err != nil {
		return nil, stats, err
	}
	return w, stats, nil
}

// EnablePersistence attaches a WAL and background snapshotter to an
// open warehouse. The current state is snapshotted immediately; every
// later insert and DDL is logged. Fails if persistence is already
// enabled.
func (w *Warehouse) EnablePersistence(dir string, opts PersistOptions) error {
	// Hold the enable barrier exclusively across Start: every mutation
	// either completes before Start's initial snapshot export (and is
	// in the snapshot) or begins after w.mgr is published (and is
	// logged). Start calls back into exportState, which takes pmu — so
	// pmu itself cannot be held across Start; pbar can, because neither
	// exportState nor the manager ever acquires it.
	w.pbar.Lock()
	defer w.pbar.Unlock()
	w.pmu.Lock()
	if w.mgr != nil {
		cur := w.mgr.Dir()
		w.pmu.Unlock()
		return fmt.Errorf("congress: persistence already enabled (dir %s)", cur)
	}
	w.pmu.Unlock()
	mgr, err := persist.Start(dir, persist.Options{
		Mode:             opts.Fsync,
		SyncInterval:     opts.FsyncInterval,
		SnapshotInterval: opts.SnapshotInterval,
		SnapshotEvery:    opts.SnapshotEvery,
		Telemetry:        w.aq.Telemetry(),
	}, w.exportState)
	if err != nil {
		return err
	}
	w.pmu.Lock()
	w.mgr = mgr
	w.pmu.Unlock()
	return nil
}

// Save writes a one-shot snapshot of the warehouse into dir, creating
// it if needed. It works with or without persistence enabled and does
// not start a WAL; OpenDir on the same dir restores this exact state.
func (w *Warehouse) Save(dir string) error {
	st, err := w.exportState()
	if err != nil {
		return err
	}
	return persist.SaveState(dir, st)
}

// Close drains a persistent warehouse: a final snapshot is written and
// the WAL is flushed and closed. A warehouse without persistence
// closes as a no-op. The warehouse must not be mutated afterwards.
func (w *Warehouse) Close() error {
	w.pmu.Lock()
	mgr := w.mgr
	w.mgr = nil
	w.pmu.Unlock()
	if mgr == nil {
		return nil
	}
	return mgr.Close()
}

// TriggerSnapshot writes a snapshot now and compacts the WAL behind
// it. Fails if persistence is not enabled.
func (w *Warehouse) TriggerSnapshot() error {
	mgr := w.manager()
	if mgr == nil {
		return fmt.Errorf("congress: persistence is not enabled")
	}
	return mgr.Snapshot()
}

// PersistStats reports the durability layer's current state; ok is
// false when persistence is not enabled.
type PersistStats struct {
	// Dir is the data directory.
	Dir string
	// Generation is the current snapshot/WAL generation.
	Generation uint64
	// InsertsSinceSnapshot counts logged inserts the newest snapshot
	// does not cover.
	InsertsSinceSnapshot int64
	// Fsync is the active durability policy.
	Fsync FsyncMode
	// DurableWALOffset is the current segment's durable byte length —
	// the replication watermark followers may safely ship to.
	DurableWALOffset int64
	// RecordSeq is the number of records appended to the current
	// segment.
	RecordSeq int64
}

// PersistStats reports the durability layer's state.
func (w *Warehouse) PersistStats() (PersistStats, bool) {
	mgr := w.manager()
	if mgr == nil {
		return PersistStats{}, false
	}
	s := mgr.Stats()
	return PersistStats{
		Dir:                  s.Dir,
		Generation:           s.Generation,
		InsertsSinceSnapshot: s.InsertsSinceSnap,
		Fsync:                s.Mode,
		DurableWALOffset:     s.DurableOffset,
		RecordSeq:            s.RecordSeq,
	}, true
}

// PersistManager exposes the underlying persist manager (nil when
// persistence is not enabled). Replication wraps it to serve the data
// directory to followers; it is read-only with respect to warehouse
// state.
func (w *Warehouse) PersistManager() *persist.Manager { return w.manager() }

// RestoreSnapshot rebuilds the warehouse from a persisted state through
// the same path recovery uses. It is meant for an empty warehouse — a
// replication follower bootstrapping from a shipped snapshot; restoring
// over existing tables fails.
func (w *Warehouse) RestoreSnapshot(st *persist.State) error { return w.restoreState(st) }

// ApplyRecord replays one WAL record through the normal mutation paths
// without logging it. Replication followers apply shipped records with
// it, so maintainer feeds and epoch bumps behave exactly as on the
// leader. The follower warehouse must not have persistence enabled —
// its durability is the shipped files themselves.
func (w *Warehouse) ApplyRecord(rec *persist.Record) error { return w.applyRecord(rec) }

func (w *Warehouse) manager() *persist.Manager {
	w.pmu.Lock()
	defer w.pmu.Unlock()
	return w.mgr
}

// logged routes a mutation through the WAL when persistence is enabled
// (apply-then-log under the manager mutex) and applies it directly
// otherwise. The shared pbar hold pins the persistence decision: the
// mutation cannot interleave with an EnablePersistence in progress, so
// it is either fully in the initial snapshot or fully logged.
func (w *Warehouse) logged(rec *persist.Record, apply func() error) error {
	w.pbar.RLock()
	defer w.pbar.RUnlock()
	mgr := w.manager()
	if mgr == nil {
		return apply()
	}
	return mgr.Log(rec, apply)
}

// noteBaseTable records a relation as base data the snapshot must
// carry (sample relations are rebuilt from synopsis state instead).
func (w *Warehouse) noteBaseTable(name string) {
	w.pmu.Lock()
	w.baseTables[strings.ToLower(name)] = true
	w.pmu.Unlock()
}

// exportState assembles the warehouse's persist.State: every base
// relation plus every synopsis's exported state. Called by the persist
// manager under its mutation mutex, so logged mutations cannot
// interleave with the cut.
func (w *Warehouse) exportState() (*persist.State, error) {
	w.pmu.Lock()
	names := make([]string, 0, len(w.baseTables))
	for name := range w.baseTables {
		names = append(names, name)
	}
	w.pmu.Unlock()
	sort.Strings(names)

	st := &persist.State{}
	for _, name := range names {
		rel, ok := w.cat.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("congress: base table %q vanished from the catalog", name)
		}
		st.Tables = append(st.Tables, persist.TableState{
			Name: rel.Name,
			Cols: append([]engine.Column(nil), rel.Schema.Cols...),
			Rows: rel.Rows(),
		})
	}
	syns, err := w.aq.ExportStates()
	if err != nil {
		return nil, err
	}
	st.Synopses = syns
	return st, nil
}

// restoreState rebuilds tables and synopses from a snapshot.
func (w *Warehouse) restoreState(st *persist.State) error {
	for _, ts := range st.Tables {
		schema, err := engine.NewSchema(ts.Cols...)
		if err != nil {
			return fmt.Errorf("congress: restoring table %q: %w", ts.Name, err)
		}
		rel := engine.NewRelation(ts.Name, schema)
		if err := rel.InsertAll(ts.Rows); err != nil {
			return fmt.Errorf("congress: restoring table %q: %w", ts.Name, err)
		}
		w.cat.Register(rel)
		w.noteBaseTable(ts.Name)
	}
	for _, ss := range st.Synopses {
		if _, err := w.aq.RestoreSynopsis(ss); err != nil {
			return err
		}
	}
	return nil
}

// applyRecord replays one WAL record through the normal mutation
// paths, without re-logging (persistence is attached only after
// replay finishes).
func (w *Warehouse) applyRecord(rec *persist.Record) error {
	switch rec.Kind {
	case persist.RecInsert:
		tbl, err := w.Table(rec.Table)
		if err != nil {
			return err
		}
		return tbl.insertRow(rec.Row)
	case persist.RecCreateTable:
		_, err := w.CreateTable(rec.Table, rec.Cols...)
		return err
	case persist.RecBuildSynopsis:
		if rec.Synopsis == nil {
			return fmt.Errorf("congress: build-synopsis record without a config")
		}
		_, err := w.aq.CreateSynopsis(*rec.Synopsis)
		return err
	case persist.RecUpdateScaleFactor:
		_, err := w.aq.UpdateScaleFactor(rec.Table, RewriteStrategy(rec.Rewrite), rec.GroupKey, rec.SF)
		return err
	case persist.RecRefreshSynopsis:
		return w.aq.Refresh(rec.Table)
	case persist.RecAttachRelation:
		schema, err := engine.NewSchema(rec.Cols...)
		if err != nil {
			return fmt.Errorf("congress: replaying attach of %q: %w", rec.Table, err)
		}
		rel := engine.NewRelation(rec.Table, schema)
		if err := rel.InsertAll(rec.Rows); err != nil {
			return fmt.Errorf("congress: replaying attach of %q: %w", rec.Table, err)
		}
		w.cat.Register(rel)
		w.noteBaseTable(rec.Table)
		return nil
	case persist.RecBuildJoinSynopsis:
		if rec.Join == nil || rec.Synopsis == nil {
			return fmt.Errorf("congress: build-join-synopsis record missing join or config")
		}
		if _, err := w.aq.CreateJoinSynopsis(*rec.Join, *rec.Synopsis); err != nil {
			return err
		}
		w.noteBaseTable(rec.Join.Name)
		return nil
	default:
		return fmt.Errorf("congress: unknown WAL record kind %d", rec.Kind)
	}
}

// UpdateScaleFactor overrides the stored scale factor of one group in a
// table's materialized sample relations (all layouts), returning how
// many rows changed. The synopsis's epoch advances so cached answers
// are invalidated. Like a refresh, the override lasts until the next
// re-materialization — including the one a snapshot-restore performs —
// so durable deployments should treat it as a tuning hint, not state.
func (w *Warehouse) UpdateScaleFactor(table string, strat RewriteStrategy, groupKey string, sf float64) (int, error) {
	updated := 0
	err := w.logged(&persist.Record{
		Kind:     persist.RecUpdateScaleFactor,
		Table:    table,
		Rewrite:  int(strat),
		GroupKey: groupKey,
		SF:       sf,
	}, func() error {
		n, err := w.aq.UpdateScaleFactor(table, strat, groupKey, sf)
		updated = n
		return err
	})
	return updated, err
}
